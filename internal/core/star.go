package core

import (
	"errors"
	"fmt"
	"math"

	"dlsbl/internal/dlt"
)

// StarMechanism extends DLS-BL to the star network of the paper's future
// work (dlt.StarInstance with heterogeneous links). The m strategic
// agents are the children; the link times Z are public infrastructure
// parameters (measurable by anyone on the wire, so not private values),
// and the root is the load originator acting for the user with RootW = 0.
//
// The allocation rule serves children in the z-optimal order (which
// depends only on the public Z, never on the bids) and splits the load by
// the equal-finish closed form for the bid profile. Because that
// composite rule is exactly makespan-optimal for every reported profile,
// the compensation-and-bonus payments carry over and so does the
// strategyproofness argument of Theorem 3.1:
//
//	C_i = α_i(b)·w̃_i
//	B_i = T*(b_{-i}) − T(α(b), (b_{-i}, w̃_i))
//	U_i = B_i
type StarMechanism struct {
	// Z are the public per-unit link times, one per child, in agent
	// index order.
	Z []float64
}

// Run executes the star mechanism on a bid profile and the observed
// execution values. The returned Outcome uses the same fields as the bus
// mechanism; Alloc is in agent index order (not service order).
func (m StarMechanism) Run(bids, exec []float64) (*Outcome, error) {
	n := len(bids)
	if n < 2 {
		return nil, errors.New("core: star mechanism needs at least two agents")
	}
	if len(exec) != n || len(m.Z) != n {
		return nil, fmt.Errorf("core: %d bids, %d exec values, %d links", n, len(exec), len(m.Z))
	}
	for i := 0; i < n; i++ {
		if !(bids[i] > 0) || math.IsInf(bids[i], 0) {
			return nil, fmt.Errorf("core: invalid bid b[%d]=%v", i, bids[i])
		}
		if !(exec[i] > 0) || math.IsInf(exec[i], 0) {
			return nil, fmt.Errorf("core: invalid execution value w̃[%d]=%v", i, exec[i])
		}
		if !(m.Z[i] >= 0) || math.IsInf(m.Z[i], 0) {
			return nil, fmt.Errorf("core: invalid link time z[%d]=%v", i, m.Z[i])
		}
	}

	alloc, msBid, err := m.optimal(bids)
	if err != nil {
		return nil, err
	}
	out := &Outcome{
		Alloc:            alloc,
		Compensation:     make([]float64, n),
		Bonus:            make([]float64, n),
		Payment:          make([]float64, n),
		Valuation:        make([]float64, n),
		Utility:          make([]float64, n),
		MakespanWithout:  make([]float64, n),
		MakespanRealized: make([]float64, n),
		MakespanBid:      msBid,
	}
	for i := 0; i < n; i++ {
		sub := m.without(i)
		subBids := removeAt(bids, i)
		_, tWithout, err := sub.optimal(subBids)
		if err != nil {
			return nil, err
		}
		speeds := append([]float64(nil), bids...)
		speeds[i] = exec[i]
		tRealized, err := m.makespanAt(alloc, speeds)
		if err != nil {
			return nil, err
		}
		out.MakespanWithout[i] = tWithout
		out.MakespanRealized[i] = tRealized
		out.Compensation[i] = alloc[i] * exec[i]
		out.Bonus[i] = tWithout - tRealized
		out.Payment[i] = out.Compensation[i] + out.Bonus[i]
		out.Valuation[i] = -alloc[i] * exec[i]
		out.Utility[i] = out.Payment[i] + out.Valuation[i]
		out.UserCost += out.Payment[i]
	}
	return out, nil
}

// optimal computes the equal-finish allocation for a bid profile under
// the bid-independent service order (children by non-decreasing public
// z), returned in agent index order plus the makespan.
func (m StarMechanism) optimal(bids []float64) (dlt.Allocation, float64, error) {
	order := orderByZ(m.Z)
	perm, err := dlt.StarInstance{Z: m.Z, W: bids}.Permute(order)
	if err != nil {
		return nil, 0, err
	}
	sa, err := dlt.OptimalStar(perm)
	if err != nil {
		return nil, 0, err
	}
	ms, err := dlt.StarMakespan(perm, sa)
	if err != nil {
		return nil, 0, err
	}
	alloc := make(dlt.Allocation, len(bids))
	for pos, idx := range order {
		alloc[idx] = sa.Children[pos]
	}
	return alloc, ms, nil
}

// makespanAt evaluates the schedule realized by alloc (agent order) when
// the processors run at the given speeds, serving in the same
// bid-independent z-order the allocation used.
func (m StarMechanism) makespanAt(alloc dlt.Allocation, speeds []float64) (float64, error) {
	order := orderByZ(m.Z)
	perm, err := dlt.StarInstance{Z: m.Z, W: speeds}.Permute(order)
	if err != nil {
		return 0, err
	}
	sa := dlt.StarAllocation{Children: make(dlt.Allocation, len(alloc))}
	for pos, idx := range order {
		sa.Children[pos] = alloc[idx]
	}
	return dlt.StarMakespan(perm, sa)
}

// without returns the mechanism with agent i's link removed.
func (m StarMechanism) without(i int) StarMechanism {
	return StarMechanism{Z: removeAt(m.Z, i)}
}

func removeAt(xs []float64, i int) []float64 {
	out := make([]float64, 0, len(xs)-1)
	out = append(out, xs[:i]...)
	return append(out, xs[i+1:]...)
}

func orderByZ(z []float64) []int {
	order := make([]int, len(z))
	for i := range order {
		order[i] = i
	}
	for a := 1; a < len(order); a++ {
		for b := a; b > 0 && z[order[b]] < z[order[b-1]]; b-- {
			order[b], order[b-1] = order[b-1], order[b]
		}
	}
	return order
}
