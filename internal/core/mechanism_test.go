package core

import (
	"math"
	"math/rand"
	"testing"

	"dlsbl/internal/dlt"
)

const tol = 1e-9

func relErr(a, b float64) float64 {
	den := math.Max(math.Max(math.Abs(a), math.Abs(b)), 1)
	return math.Abs(a-b) / den
}

// TestRunHandComputedNCPFE works the full payment arithmetic by hand:
// NCP-FE, z=1, w=(2,3), truthful bids, full-speed execution.
//
//	α = (2/3, 1/3), T(α,b) = 4/3.
//	Without agent 1 (the originator): CP over {3} ⇒ T = 1+3 = 4.
//	Without agent 2: NCP-FE over {2} ⇒ T = 2.
//	C = (4/3, 1), B = (4 − 4/3, 2 − 4/3) = (8/3, 2/3),
//	Q = (4, 5/3), U = B.
func TestRunHandComputedNCPFE(t *testing.T) {
	m := Mechanism{Network: dlt.NCPFE, Z: 1}
	out, err := m.Run([]float64{2, 3}, []float64{2, 3})
	if err != nil {
		t.Fatal(err)
	}
	check := func(name string, got, want float64) {
		t.Helper()
		if relErr(got, want) > tol {
			t.Errorf("%s = %v, want %v", name, got, want)
		}
	}
	check("α1", out.Alloc[0], 2.0/3)
	check("α2", out.Alloc[1], 1.0/3)
	check("T(α,b)", out.MakespanBid, 4.0/3)
	check("T_{-1}", out.MakespanWithout[0], 4)
	check("T_{-2}", out.MakespanWithout[1], 2)
	check("C1", out.Compensation[0], 4.0/3)
	check("C2", out.Compensation[1], 1)
	check("B1", out.Bonus[0], 8.0/3)
	check("B2", out.Bonus[1], 2.0/3)
	check("Q1", out.Payment[0], 4)
	check("Q2", out.Payment[1], 5.0/3)
	check("U1", out.Utility[0], 8.0/3)
	check("U2", out.Utility[1], 2.0/3)
	check("user cost", out.UserCost, 4+5.0/3)
	check("V1", out.Valuation[0], -4.0/3)
	check("realized T1", out.MakespanRealized[0], 4.0/3)
}

// TestRunSlowExecutionShrinksBonus: executing at w̃ > b shrinks the bonus
// by exactly the makespan increase while the compensation still reimburses
// the realized cost, so utility drops.
func TestRunSlowExecutionShrinksBonus(t *testing.T) {
	m := Mechanism{Network: dlt.NCPFE, Z: 1}
	truthful, err := m.Run([]float64{2, 3}, []float64{2, 3})
	if err != nil {
		t.Fatal(err)
	}
	slow, err := m.Run([]float64{2, 3}, []float64{2, 6}) // agent 2 slacks
	if err != nil {
		t.Fatal(err)
	}
	// Realized makespan for agent 2: T2 = 1·(1/3) + (1/3)·6 = 7/3.
	if relErr(slow.MakespanRealized[1], 7.0/3) > tol {
		t.Errorf("realized = %v, want 7/3", slow.MakespanRealized[1])
	}
	if relErr(slow.Bonus[1], 2-7.0/3) > tol {
		t.Errorf("bonus = %v, want -1/3", slow.Bonus[1])
	}
	if slow.Utility[1] >= truthful.Utility[1] {
		t.Errorf("slacking utility %v not below truthful %v", slow.Utility[1], truthful.Utility[1])
	}
	// Agent 1's components are untouched by agent 2 slowing down except
	// through its own realized makespan, which uses b_2 not w̃_2.
	if relErr(slow.Utility[0], truthful.Utility[0]) > tol {
		t.Errorf("agent 1 utility changed: %v vs %v", slow.Utility[0], truthful.Utility[0])
	}
}

func TestRunInputValidation(t *testing.T) {
	m := Mechanism{Network: dlt.CP, Z: 0.5}
	if _, err := m.Run([]float64{1}, []float64{1}); err == nil {
		t.Error("single agent accepted")
	}
	if _, err := m.Run([]float64{1, 2}, []float64{1}); err == nil {
		t.Error("mismatched exec length accepted")
	}
	if _, err := m.Run([]float64{0, 2}, []float64{1, 2}); err == nil {
		t.Error("zero bid accepted")
	}
	if _, err := m.Run([]float64{-1, 2}, []float64{1, 2}); err == nil {
		t.Error("negative bid accepted")
	}
	if _, err := m.Run([]float64{1, 2}, []float64{1, math.Inf(1)}); err == nil {
		t.Error("infinite exec accepted")
	}
	if _, err := m.Run([]float64{math.NaN(), 2}, []float64{1, 2}); err == nil {
		t.Error("NaN bid accepted")
	}
}

func TestPaymentRuleString(t *testing.T) {
	if WithVerification.String() != "verified" || WithoutVerification.String() != "unverified" {
		t.Error("PaymentRule.String mismatch")
	}
}

// TestTruthfulUtilityEqualsContribution: for truthful full-speed agents,
// U_i = T_{-i} − T(b), the agent's marginal contribution to shrinking the
// makespan — the quantity the paper calls "its contribution in reducing
// the total execution time".
func TestTruthfulUtilityEqualsContribution(t *testing.T) {
	rng := rand.New(rand.NewSource(30))
	for _, net := range dlt.Networks {
		for trial := 0; trial < 40; trial++ {
			in := RegimeSafeInstance(rng, net, 2+rng.Intn(10))
			mech := Mechanism{Network: net, Z: in.Z}
			out, err := mech.Run(in.W, TruthfulExec(in.W))
			if err != nil {
				t.Fatal(err)
			}
			for i := range in.W {
				want := out.MakespanWithout[i] - out.MakespanBid
				if relErr(out.Utility[i], want) > tol {
					t.Errorf("%v: U[%d]=%v, want T_{-i}−T = %v", net, i, out.Utility[i], want)
				}
			}
		}
	}
}

// TestTheorem31Strategyproof: no sampled deviation beats truth-telling,
// across all three network classes.
func TestTheorem31Strategyproof(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for _, net := range dlt.Networks {
		for _, m := range []int{2, 3, 5, 9} {
			if v := CheckStrategyproof(rng, net, 30, m, 1e-9); len(v) > 0 {
				t.Errorf("%v m=%d: %d violations, first: agent %d: %s (instance %+v)",
					net, m, len(v), v[0].Agent, v[0].Detail, v[0].Instance)
			}
		}
	}
}

// TestTheorem32VoluntaryParticipation: truthful agents never lose money.
func TestTheorem32VoluntaryParticipation(t *testing.T) {
	rng := rand.New(rand.NewSource(32))
	for _, net := range dlt.Networks {
		for _, m := range []int{2, 4, 8, 16} {
			if v := CheckVoluntaryParticipation(rng, net, 50, m, 1e-9); len(v) > 0 {
				t.Errorf("%v m=%d: %d violations, first: agent %d: %s",
					net, m, len(v), v[0].Agent, v[0].Detail)
			}
		}
	}
}

// TestBidSweepPeaksAtTruth: on a dense sweep the maximum utility sits at
// ratio 1 — the curve the strategic-bidding example plots.
func TestBidSweepPeaksAtTruth(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	ratios := []float64{0.25, 0.5, 0.75, 0.9, 1, 1.1, 1.25, 1.5, 2, 3, 4}
	for _, net := range dlt.Networks {
		in := RegimeSafeInstance(rng, net, 6)
		mech := Mechanism{Network: net, Z: in.Z}
		for i := 0; i < in.M(); i++ {
			pts, err := mech.BidSweep(in.W, i, ratios)
			if err != nil {
				t.Fatal(err)
			}
			var truthU float64
			for _, p := range pts {
				if p.Ratio == 1 {
					truthU = p.Utility
				}
			}
			for _, p := range pts {
				if p.Utility > truthU+tol {
					t.Errorf("%v agent %d: ratio %v utility %v beats truthful %v",
						net, i, p.Ratio, p.Utility, truthU)
				}
			}
		}
	}
}

// TestBidSweepFullSpeed: even executing at full true speed, misreporting
// cannot beat truth (allocation distortion alone already hurts).
func TestBidSweepFullSpeed(t *testing.T) {
	rng := rand.New(rand.NewSource(34))
	in := RegimeSafeInstance(rng, dlt.NCPFE, 5)
	mech := Mechanism{Network: dlt.NCPFE, Z: in.Z}
	pts, err := mech.BidSweepFullSpeed(in.W, 2, []float64{0.5, 0.8, 1, 1.3, 2})
	if err != nil {
		t.Fatal(err)
	}
	var truthU float64
	for _, p := range pts {
		if p.Ratio == 1 {
			truthU = p.Utility
		}
	}
	for _, p := range pts {
		if p.Utility > truthU+tol {
			t.Errorf("ratio %v utility %v beats truthful %v", p.Ratio, p.Utility, truthU)
		}
		if p.Exec != in.W[2] {
			t.Errorf("full-speed sweep executed at %v, want %v", p.Exec, in.W[2])
		}
	}
}

// TestExecSweepVerificationAblation (experiment E12): with verification,
// slacking strictly reduces utility; without verification the payment no
// longer reacts to the meter, so the utility is flat in w̃ (compensation
// reimburses the inflated cost and the bonus ignores it) — the incentive
// to run at full speed disappears.
func TestExecSweepVerificationAblation(t *testing.T) {
	trueW := []float64{2, 3, 4}
	mech := Mechanism{Network: dlt.NCPFE, Z: 0.3}
	ratios := []float64{1, 1.25, 1.5, 2, 3}

	verified, err := mech.ExecSweep(trueW, 1, ratios, WithVerification)
	if err != nil {
		t.Fatal(err)
	}
	for k := 1; k < len(verified); k++ {
		if verified[k].Utility >= verified[k-1].Utility-tol {
			t.Errorf("verified: slacking ratio %v utility %v did not fall below %v",
				verified[k].Ratio, verified[k].Utility, verified[k-1].Utility)
		}
	}

	unverified, err := mech.ExecSweep(trueW, 1, ratios, WithoutVerification)
	if err != nil {
		t.Fatal(err)
	}
	for k := 1; k < len(unverified); k++ {
		if relErr(unverified[k].Utility, unverified[0].Utility) > tol {
			t.Errorf("unverified: utility moved with w̃: %v vs %v",
				unverified[k].Utility, unverified[0].Utility)
		}
	}

	if _, err := mech.ExecSweep(trueW, 1, []float64{0.5}, WithVerification); err == nil {
		t.Error("ratio < 1 accepted")
	}
}

func TestUtilityDeviatingBounds(t *testing.T) {
	mech := Mechanism{Network: dlt.CP, Z: 0.2}
	if _, err := mech.UtilityDeviating([]float64{1, 2}, 5, 1, 1); err == nil {
		t.Error("out-of-range agent accepted")
	}
	if _, err := mech.UtilityDeviating([]float64{1, 2}, -1, 1, 1); err == nil {
		t.Error("negative agent accepted")
	}
}

func TestTruthfulExecIsCopy(t *testing.T) {
	w := []float64{1, 2}
	e := TruthfulExec(w)
	e[0] = 99
	if w[0] == 99 {
		t.Error("TruthfulExec aliases its input")
	}
}

// TestUserCostConservation: the user's bill equals the sum of payments;
// utilities equal payments plus valuations.
func TestUserCostConservation(t *testing.T) {
	rng := rand.New(rand.NewSource(35))
	for trial := 0; trial < 30; trial++ {
		in := RegimeSafeInstance(rng, dlt.CP, 2+rng.Intn(8))
		mech := Mechanism{Network: dlt.CP, Z: in.Z}
		out, err := mech.Run(in.W, TruthfulExec(in.W))
		if err != nil {
			t.Fatal(err)
		}
		var sumQ float64
		for i := range out.Payment {
			sumQ += out.Payment[i]
			if relErr(out.Utility[i], out.Payment[i]+out.Valuation[i]) > tol {
				t.Errorf("U != Q + V for agent %d", i)
			}
		}
		if relErr(out.UserCost, sumQ) > tol {
			t.Errorf("user cost %v != ΣQ %v", out.UserCost, sumQ)
		}
	}
}
