package core

import (
	"math"
	"math/rand"
	"testing"
)

func TestTwoParamValidation(t *testing.T) {
	m := TwoParamStarMechanism{}
	if _, err := m.RunTwoParam([]float64{1}, []float64{0.1}, []float64{1}, []float64{0.1}); err == nil {
		t.Error("single agent accepted")
	}
	if _, err := m.RunTwoParam([]float64{1, 2}, []float64{0.1}, []float64{1, 2}, []float64{0.1, 0.2}); err == nil {
		t.Error("mismatched lengths accepted")
	}
	if _, err := m.RunTwoParam([]float64{0, 2}, []float64{0.1, 0.2}, []float64{1, 2}, []float64{0.1, 0.2}); err == nil {
		t.Error("zero w accepted")
	}
	if _, err := m.RunTwoParam([]float64{1, 2}, []float64{-0.1, 0.2}, []float64{1, 2}, []float64{0.1, 0.2}); err == nil {
		t.Error("negative z accepted")
	}
}

// TestTwoParamTruthfulMatchesStarMechanism: with truthful link bids the
// two-parameter mechanism coincides with StarMechanism (z public).
func TestTwoParamTruthfulMatchesStarMechanism(t *testing.T) {
	rng := rand.New(rand.NewSource(130))
	for trial := 0; trial < 30; trial++ {
		n := 2 + rng.Intn(6)
		star, w := randomStarMech(rng, n)
		two := TwoParamStarMechanism{}
		so, err := star.Run(w, TruthfulExec(w))
		if err != nil {
			t.Fatal(err)
		}
		to, err := two.RunTwoParam(w, star.Z, TruthfulExec(w), star.Z)
		if err != nil {
			t.Fatal(err)
		}
		for i := range w {
			if relErr(so.Payment[i], to.Payment[i]) > 1e-9 {
				t.Errorf("Q[%d] star %v, two-param %v", i, so.Payment[i], to.Payment[i])
			}
		}
	}
}

// TestTwoParamLiesNeverProfit documents the (initially surprising)
// POSITIVE result: even with TWO private parameters, no sampled lie — on
// the link, on the speed, or on both jointly — beats truth-telling. The
// reason is verification, not dimensionality: the wire exposes the true
// link time and the meter the true speed, so the realized makespan of any
// lie-distorted allocation is evaluated at the TRUE parameters, and the
// truthful allocation is the unique minimizer there. Nisan–Ronen's
// multi-parameter hardness applies to mechanisms WITHOUT ex-post
// observability; full verification sidesteps it.
func TestTwoParamLiesNeverProfit(t *testing.T) {
	rng := rand.New(rand.NewSource(131))
	samples := 0
	for trial := 0; trial < 60; trial++ {
		n := 3 + rng.Intn(4)
		mech := TwoParamStarMechanism{}
		z := make([]float64, n)
		w := make([]float64, n)
		for i := 0; i < n; i++ {
			z[i] = 0.05 + rng.Float64()*0.5
			w[i] = 0.5 + rng.Float64()*4
		}
		truthOut, err := mech.RunTwoParam(w, z, TruthfulExec(w), z)
		if err != nil {
			t.Fatal(err)
		}
		i := rng.Intn(n)
		for _, zf := range []float64{0.25, 0.5, 1, 2, 4} {
			for _, wf := range []float64{0.5, 1, 2} {
				if zf == 1 && wf == 1 {
					continue
				}
				samples++
				bidZ := append([]float64(nil), z...)
				bidZ[i] = z[i] * zf
				bidW := append([]float64(nil), w...)
				bidW[i] = w[i] * wf
				exec := TruthfulExec(w)
				if bidW[i] > exec[i] {
					exec[i] = bidW[i] // rational cover for an overbid
				}
				devOut, err := mech.RunTwoParam(bidW, bidZ, exec, z)
				if err != nil {
					t.Fatal(err)
				}
				if gain := devOut.Utility[i] - truthOut.Utility[i]; gain > 1e-9 {
					t.Errorf("n=%d agent %d: (zf=%.2f, wf=%.2f) profits %v", n, i, zf, wf, gain)
				}
			}
		}
	}
	t.Logf("two-param: 0/%d sampled joint lies profitable — full verification rescues multi-parameter truthfulness", samples)
}

// TestTwoParamWireExposure: the realized makespan uses the deviator's
// actual link, so the lie inflates the realized schedule beyond the
// promised one.
func TestTwoParamWireExposure(t *testing.T) {
	mech := TwoParamStarMechanism{}
	w := []float64{2, 2, 2}
	z := []float64{0.3, 0.3, 0.3}
	bidZ := []float64{0.05, 0.3, 0.3} // P1 claims a fast link it does not have
	out, err := mech.RunTwoParam(w, bidZ, TruthfulExec(w), z)
	if err != nil {
		t.Fatal(err)
	}
	if out.MakespanRealized[0] <= out.MakespanBid+1e-12 {
		t.Errorf("realized %v not above promised %v despite the slow wire", out.MakespanRealized[0], out.MakespanBid)
	}
	if math.IsNaN(out.UserCost) {
		t.Error("NaN user cost")
	}
}
