package core

import (
	"math"
	"math/rand"
	"testing"

	"dlsbl/internal/dlt"
)

func TestAffineMechanismValidation(t *testing.T) {
	m := AffineMechanism{Network: dlt.CP, Z: 0.2, Scm: 0.1}
	if _, err := m.Run([]float64{1}, []float64{1}); err == nil {
		t.Error("single agent accepted")
	}
	if _, err := m.Run([]float64{1, 2}, []float64{1}); err == nil {
		t.Error("mismatched exec accepted")
	}
	if _, err := m.Run([]float64{0, 2}, []float64{1, 2}); err == nil {
		t.Error("zero bid accepted")
	}
	if _, err := m.Run([]float64{1, 2}, []float64{1, math.Inf(1)}); err == nil {
		t.Error("infinite exec accepted")
	}
}

// TestAffineMechanismZeroOverheadMatchesLinear: with Scm = Scp = 0 both
// mechanisms price exactly optimal schedules, so the bid makespans and
// every counterfactual T_{-i} coincide (the affine rule serves in sorted
// order, which changes the fractions but not the optimal values); on a
// sorted instance even the payments match entry for entry.
func TestAffineMechanismZeroOverheadMatchesLinear(t *testing.T) {
	rng := rand.New(rand.NewSource(120))
	for trial := 0; trial < 30; trial++ {
		in := RegimeSafeInstance(rng, dlt.CP, 2+rng.Intn(6))
		sortFloats(in.W)
		aff := AffineMechanism{Network: dlt.CP, Z: in.Z}
		lin := Mechanism{Network: dlt.CP, Z: in.Z}
		ao, err := aff.Run(in.W, TruthfulExec(in.W))
		if err != nil {
			t.Fatal(err)
		}
		lo, err := lin.Run(in.W, TruthfulExec(in.W))
		if err != nil {
			t.Fatal(err)
		}
		if relErr(ao.MakespanBid, lo.MakespanBid) > 1e-6 {
			t.Errorf("makespan affine %v, linear %v", ao.MakespanBid, lo.MakespanBid)
		}
		for i := range in.W {
			if relErr(ao.MakespanWithout[i], lo.MakespanWithout[i]) > 1e-6 {
				t.Errorf("T_-%d affine %v, linear %v", i, ao.MakespanWithout[i], lo.MakespanWithout[i])
			}
			if relErr(ao.Payment[i], lo.Payment[i]) > 1e-6 {
				t.Errorf("Q[%d] affine %v, linear %v", i, ao.Payment[i], lo.Payment[i])
			}
		}
	}
}

func sortFloats(xs []float64) {
	for a := 1; a < len(xs); a++ {
		for b := a; b > 0 && xs[b] < xs[b-1]; b-- {
			xs[b], xs[b-1] = xs[b-1], xs[b]
		}
	}
}

// TestAffineMechanismExcludedAgents: an agent priced out by the overheads
// receives α = 0, zero compensation, and a well-defined (typically zero)
// bonus — it never LOSES by participating truthfully.
func TestAffineMechanismExcludedAgents(t *testing.T) {
	// Heavy per-transfer overhead: only one processor is used.
	m := AffineMechanism{Network: dlt.CP, Z: 0.1, Scm: 5}
	w := []float64{1, 1, 1, 1}
	out, err := m.Run(w, TruthfulExec(w))
	if err != nil {
		t.Fatal(err)
	}
	used := 0
	for i, a := range out.Alloc {
		if a > 1e-12 {
			used++
			continue
		}
		if out.Compensation[i] != 0 {
			t.Errorf("excluded P%d compensated %v", i+1, out.Compensation[i])
		}
		if out.Utility[i] < -1e-9 {
			t.Errorf("excluded truthful P%d has negative utility %v", i+1, out.Utility[i])
		}
	}
	if used != 1 {
		t.Fatalf("expected a single participant, got %d", used)
	}
}

// TestAffineMechanismAllNetworks: the affine mechanism behaves on the NCP
// classes too — feasible allocations, utility identity, no truthful
// losses.
func TestAffineMechanismAllNetworks(t *testing.T) {
	rng := rand.New(rand.NewSource(122))
	for _, net := range dlt.Networks {
		for trial := 0; trial < 20; trial++ {
			in := RegimeSafeInstance(rng, net, 2+rng.Intn(5))
			mech := AffineMechanism{Network: net, Z: in.Z, Scm: rng.Float64() * 0.3, Scp: rng.Float64() * 0.2}
			out, err := mech.Run(in.W, TruthfulExec(in.W))
			if err != nil {
				t.Fatalf("%v: %v", net, err)
			}
			if err := out.Alloc.Validate(in.M()); err != nil {
				t.Fatalf("%v: %v", net, err)
			}
			for i, u := range out.Utility {
				if u < -1e-9 {
					t.Errorf("%v: truthful U[%d]=%v < 0 (Scm=%v Scp=%v w=%v)", net, i, u, mech.Scm, mech.Scp, in.W)
				}
				if math.Abs(u-(out.Payment[i]+out.Valuation[i])) > 1e-9 {
					t.Errorf("%v: U != Q+V at %d", net, i)
				}
			}
		}
	}
	if _, err := (AffineMechanism{Network: dlt.Network(9), Z: 0.1}).Run([]float64{1, 2}, []float64{1, 2}); err == nil {
		t.Error("unknown network accepted")
	}
}

// TestAffineMechanismIncentives measures strategyproofness and voluntary
// participation across random affine instances. If the participation
// threshold breaks either property, this test is where it shows — see
// experiment X12, which reports the measured violation landscape.
func TestAffineMechanismIncentives(t *testing.T) {
	rng := rand.New(rand.NewSource(121))
	spViolations, vpViolations, trials := 0, 0, 0
	var worstGain float64
	for trial := 0; trial < 60; trial++ {
		in := RegimeSafeInstance(rng, dlt.CP, 2+rng.Intn(5))
		mech := AffineMechanism{Network: dlt.CP, Z: in.Z, Scm: rng.Float64() * 0.3, Scp: rng.Float64() * 0.2}
		truthOut, err := mech.Run(in.W, TruthfulExec(in.W))
		if err != nil {
			t.Fatal(err)
		}
		for i := range in.W {
			if truthOut.Utility[i] < -1e-9 {
				vpViolations++
			}
		}
		i := rng.Intn(in.M())
		for k := 0; k < 6; k++ {
			trials++
			ratio := 0.25 + rng.Float64()*3.75
			bids := append([]float64(nil), in.W...)
			bids[i] = in.W[i] * ratio
			exec := TruthfulExec(in.W)
			exec[i] = math.Max(bids[i], in.W[i])
			devOut, err := mech.Run(bids, exec)
			if err != nil {
				t.Fatal(err)
			}
			if gain := devOut.Utility[i] - truthOut.Utility[i]; gain > 1e-9 {
				spViolations++
				if gain > worstGain {
					worstGain = gain
				}
			}
		}
	}
	t.Logf("affine mechanism: %d/%d deviation samples profitable (worst gain %v), %d voluntary-participation violations",
		spViolations, trials, worstGain, vpViolations)
	if vpViolations > 0 {
		t.Errorf("truthful agents lost money under the affine mechanism: %d cases", vpViolations)
	}
	// Strategyproofness is NOT asserted to zero here: X12 documents the
	// measured landscape. But it must not be rampant — the mechanism is
	// still approximately truthful away from the participation boundary.
	if spViolations > trials/10 {
		t.Errorf("affine mechanism broadly manipulable: %d/%d profitable deviations", spViolations, trials)
	}
}
