package core

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"dlsbl/internal/dlt"
)

// Property: truth-telling is a dominant strategy even when the OTHER
// agents misreport arbitrarily — the definition of strategyproofness
// quantifies over all b_{-i}, not just truthful ones.
func TestQuickDominantAgainstArbitraryOthers(t *testing.T) {
	f := func(seed int64, netIdx, mRaw, agentRaw uint8, ratioRaw float64) bool {
		rng := rand.New(rand.NewSource(seed))
		net := dlt.Networks[int(netIdx)%len(dlt.Networks)]
		m := 2 + int(mRaw)%8
		i := int(agentRaw) % m
		in := RegimeSafeInstance(rng, net, m)
		mech := Mechanism{Network: net, Z: in.Z}

		// Others misreport by arbitrary factors in [0.5, 2] but stay in
		// the regime (bids ≥ 0.25 > z ≤ 0.49... keep ≥ 0.5).
		bids := append([]float64(nil), in.W...)
		for j := range bids {
			if j != i {
				bids[j] *= 0.5 + rng.Float64()*1.5
			}
		}
		execs := make([]float64, m)
		for j := range execs {
			// Others execute at max(bid, true) — rational given their bid.
			execs[j] = math.Max(bids[j], in.W[j])
		}

		// Truthful i.
		bids[i] = in.W[i]
		execs[i] = in.W[i]
		truthOut, err := mech.Run(bids, execs)
		if err != nil {
			return false
		}
		truthU := truthOut.Utility[i]

		// Deviating i.
		ratio := 0.25 + math.Abs(math.Mod(ratioRaw, 4))
		if math.IsNaN(ratio) || math.IsInf(ratio, 0) {
			ratio = 2
		}
		bids[i] = in.W[i] * ratio
		execs[i] = math.Max(bids[i], in.W[i])
		devOut, err := mech.Run(bids, execs)
		if err != nil {
			return false
		}
		return devOut.Utility[i] <= truthU+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Fatal(err)
	}
}

// Property: the realized makespan with verification is never below the
// bid makespan when the agent executes no faster than it bid (w̃ ≥ b).
func TestQuickRealizedAtLeastBidMakespan(t *testing.T) {
	f := func(seed int64, netIdx, mRaw, agentRaw uint8, slackRaw float64) bool {
		rng := rand.New(rand.NewSource(seed))
		net := dlt.Networks[int(netIdx)%len(dlt.Networks)]
		m := 2 + int(mRaw)%8
		i := int(agentRaw) % m
		in := RegimeSafeInstance(rng, net, m)
		mech := Mechanism{Network: net, Z: in.Z}
		slack := 1 + math.Abs(math.Mod(slackRaw, 3))
		if math.IsNaN(slack) || math.IsInf(slack, 0) {
			slack = 1.5
		}
		execs := TruthfulExec(in.W)
		execs[i] *= slack
		out, err := mech.Run(in.W, execs)
		if err != nil {
			return false
		}
		return out.MakespanRealized[i] >= out.MakespanBid-1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: the O(m) prefix/suffix payment engine and the O(m²) naive
// per-agent re-solve are the same mechanism — every Outcome component
// agrees within 1e-10 for random classes, rules, sizes, and strategic
// bid/exec profiles. (Deterministic sweeps live in payments_test.go;
// this is the generative form.)
func TestQuickEngineMatchesNaive(t *testing.T) {
	f := func(seed int64, netIdx, mRaw, ruleRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		net := dlt.Networks[int(netIdx)%len(dlt.Networks)]
		m := 2 + int(mRaw)%63
		rule := WithVerification
		if ruleRaw%2 == 1 {
			rule = WithoutVerification
		}
		in := RegimeSafeInstance(rng, net, m)
		bids := make([]float64, m)
		execs := make([]float64, m)
		for i := 0; i < m; i++ {
			bids[i] = in.W[i] * (0.25 + rng.Float64()*3.75)
			execs[i] = math.Max(bids[i], in.W[i]) * (1 + rng.Float64())
		}
		mech := Mechanism{Network: net, Z: in.Z}
		fast, err := mech.RunWithRule(bids, execs, rule)
		if err != nil {
			return false
		}
		naive, err := mech.RunNaiveWithRule(bids, execs, rule)
		if err != nil {
			return false
		}
		close := func(a, b float64) bool {
			return !math.IsNaN(a) && math.Abs(a-b) <= 1e-10*math.Max(1, math.Abs(b))
		}
		if !close(fast.MakespanBid, naive.MakespanBid) || !close(fast.UserCost, naive.UserCost) {
			return false
		}
		for i := 0; i < m; i++ {
			if !close(fast.Alloc[i], naive.Alloc[i]) ||
				!close(fast.MakespanWithout[i], naive.MakespanWithout[i]) ||
				!close(fast.MakespanRealized[i], naive.MakespanRealized[i]) ||
				!close(fast.Payment[i], naive.Payment[i]) ||
				!close(fast.Utility[i], naive.Utility[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: payments are anonymous in the sense that the user cost is
// finite and every compensation is non-negative (fractions and execution
// values are non-negative).
func TestQuickCompensationNonNegative(t *testing.T) {
	f := func(seed int64, netIdx, mRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		net := dlt.Networks[int(netIdx)%len(dlt.Networks)]
		m := 2 + int(mRaw)%10
		in := RegimeSafeInstance(rng, net, m)
		mech := Mechanism{Network: net, Z: in.Z}
		out, err := mech.Run(in.W, TruthfulExec(in.W))
		if err != nil {
			return false
		}
		for _, c := range out.Compensation {
			if c < 0 || math.IsNaN(c) || math.IsInf(c, 0) {
				return false
			}
		}
		return !math.IsNaN(out.UserCost) && !math.IsInf(out.UserCost, 0)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
