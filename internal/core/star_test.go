package core

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"dlsbl/internal/dlt"
)

func randomStarMech(rng *rand.Rand, n int) (StarMechanism, []float64) {
	z := make([]float64, n)
	w := make([]float64, n)
	for i := 0; i < n; i++ {
		z[i] = 0.02 + rng.Float64()*0.4
		w[i] = 0.5 + rng.Float64()*7.5
	}
	return StarMechanism{Z: z}, w
}

func TestStarMechanismValidation(t *testing.T) {
	m := StarMechanism{Z: []float64{0.1, 0.2}}
	if _, err := m.Run([]float64{1}, []float64{1}); err == nil {
		t.Error("single agent accepted")
	}
	if _, err := m.Run([]float64{1, 2}, []float64{1}); err == nil {
		t.Error("mismatched exec accepted")
	}
	if _, err := (StarMechanism{Z: []float64{0.1}}).Run([]float64{1, 2}, []float64{1, 2}); err == nil {
		t.Error("mismatched links accepted")
	}
	if _, err := m.Run([]float64{0, 2}, []float64{1, 2}); err == nil {
		t.Error("zero bid accepted")
	}
	if _, err := m.Run([]float64{1, 2}, []float64{1, math.NaN()}); err == nil {
		t.Error("NaN exec accepted")
	}
	bad := StarMechanism{Z: []float64{-0.1, 0.2}}
	if _, err := bad.Run([]float64{1, 2}, []float64{1, 2}); err == nil {
		t.Error("negative link accepted")
	}
}

// TestStarMechanismUniformMatchesBusCP: with uniform links the star
// mechanism's allocation and makespans coincide with the CP-bus DLS-BL
// (the star with a non-computing root IS the CP bus).
func TestStarMechanismUniformMatchesBusCP(t *testing.T) {
	rng := rand.New(rand.NewSource(70))
	for trial := 0; trial < 30; trial++ {
		n := 2 + rng.Intn(8)
		z := 0.05 + rng.Float64()*0.4
		w := make([]float64, n)
		for i := range w {
			w[i] = 0.5 + rng.Float64()*7.5
		}
		zs := make([]float64, n)
		for i := range zs {
			zs[i] = z
		}
		star := StarMechanism{Z: zs}
		bus := Mechanism{Network: dlt.CP, Z: z}
		so, err := star.Run(w, TruthfulExec(w))
		if err != nil {
			t.Fatal(err)
		}
		bo, err := bus.Run(w, TruthfulExec(w))
		if err != nil {
			t.Fatal(err)
		}
		if relErr(so.MakespanBid, bo.MakespanBid) > 1e-9 {
			t.Errorf("makespan star %v, bus %v", so.MakespanBid, bo.MakespanBid)
		}
		// With uniform z the order is stable-identity, so allocations
		// and payments line up index by index.
		for i := range w {
			if relErr(so.Alloc[i], bo.Alloc[i]) > 1e-9 {
				t.Errorf("α[%d] star %v, bus %v", i, so.Alloc[i], bo.Alloc[i])
			}
			if relErr(so.Payment[i], bo.Payment[i]) > 1e-9 {
				t.Errorf("Q[%d] star %v, bus %v", i, so.Payment[i], bo.Payment[i])
			}
		}
	}
}

// TestStarMechanismStrategyproof: truth-telling dominates across random
// heterogeneous-link instances — Theorem 3.1 carries over to the star.
func TestStarMechanismStrategyproof(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	for trial := 0; trial < 60; trial++ {
		n := 2 + rng.Intn(6)
		mech, w := randomStarMech(rng, n)
		i := rng.Intn(n)
		truthOut, err := mech.Run(w, TruthfulExec(w))
		if err != nil {
			t.Fatal(err)
		}
		for k := 0; k < 6; k++ {
			ratio := 0.25 + rng.Float64()*3.75
			bids := append([]float64(nil), w...)
			bids[i] = w[i] * ratio
			exec := TruthfulExec(w)
			exec[i] = math.Max(bids[i], w[i])
			devOut, err := mech.Run(bids, exec)
			if err != nil {
				t.Fatal(err)
			}
			if devOut.Utility[i] > truthOut.Utility[i]+1e-9 {
				t.Errorf("n=%d agent %d: bid ratio %.3f yields %v > truthful %v (z=%v w=%v)",
					n, i, ratio, devOut.Utility[i], truthOut.Utility[i], mech.Z, w)
			}
		}
	}
}

// TestStarMechanismVoluntaryParticipation: truthful agents never lose.
func TestStarMechanismVoluntaryParticipation(t *testing.T) {
	rng := rand.New(rand.NewSource(72))
	for trial := 0; trial < 60; trial++ {
		mech, w := randomStarMech(rng, 2+rng.Intn(10))
		out, err := mech.Run(w, TruthfulExec(w))
		if err != nil {
			t.Fatal(err)
		}
		for i, u := range out.Utility {
			if u < -1e-9 {
				t.Errorf("truthful agent %d utility %v < 0", i, u)
			}
		}
	}
}

// TestStarMechanismSlackPenalized: slow execution shrinks utility, as on
// the bus.
func TestStarMechanismSlackPenalized(t *testing.T) {
	mech := StarMechanism{Z: []float64{0.1, 0.3, 0.2}}
	w := []float64{1, 2, 3}
	truthOut, err := mech.Run(w, TruthfulExec(w))
	if err != nil {
		t.Fatal(err)
	}
	exec := TruthfulExec(w)
	exec[1] *= 2
	slackOut, err := mech.Run(w, exec)
	if err != nil {
		t.Fatal(err)
	}
	if slackOut.Utility[1] >= truthOut.Utility[1] {
		t.Errorf("slacking utility %v not below truthful %v", slackOut.Utility[1], truthOut.Utility[1])
	}
}

// Property: the star mechanism's allocation is feasible and its utility
// identity U = Q + V holds.
func TestQuickStarMechanismInvariants(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + int(nRaw)%8
		mech, w := randomStarMech(rng, n)
		out, err := mech.Run(w, TruthfulExec(w))
		if err != nil {
			return false
		}
		if err := out.Alloc.Validate(n); err != nil {
			return false
		}
		for i := range w {
			if math.Abs(out.Utility[i]-(out.Payment[i]+out.Valuation[i])) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
