package core

import (
	"errors"
	"fmt"
	"math"

	"dlsbl/internal/dlt"
)

// Multi-round payments. A pipelined load (internal/pipeline) is allocated
// with the steady-state balanced rule dlt.PipelinedAllocation and served
// in R installment sub-rounds, so the mechanism's three components keep
// the Definition 3.1 shape but are evaluated in the R-installment
// schedule class:
//
//	allocation:    α_P(b)  — the balanced pipelined split for the bids
//	compensation:  C_i = α_P,i(b)·w̃_i
//	bonus:         B_i = T_R(α_P(b_{-i}), b_{-i}) − T_R(α_P(b), (b_{-i}, w̃_i))
//
// where T_R is the R-installment greedy schedule's makespan
// (dlt.MultiRoundMakespanWithSpeeds). With rounds ≤ 1 RunRounds delegates
// to the single-round engine verbatim, so the degenerate case is
// bit-identical to the paper's mechanism — the telescoping anchor the
// pipelined protocol's parity tests rely on. The per-agent marginals here
// are O(m) solver calls (the naive structure of RunNaive); pipelined
// rounds are not a payment hot path.

// RunRounds executes the mechanism for a load served in `rounds`
// installments under the given division policy. rounds ≤ 1 is exactly
// Run/RunWithRule.
func (m Mechanism) RunRounds(bids, exec []float64, rounds int, policy dlt.RoundPolicy, rule PaymentRule) (*Outcome, error) {
	if rounds <= 1 {
		return m.run(bids, exec, rule)
	}
	n := len(bids)
	if n < 2 {
		return nil, errors.New("core: DLS-BL needs at least two agents")
	}
	if len(exec) != n {
		return nil, fmt.Errorf("core: %d execution values for %d bids", len(exec), n)
	}
	for i := 0; i < n; i++ {
		if !(bids[i] > 0) || math.IsInf(bids[i], 0) {
			return nil, fmt.Errorf("core: invalid bid b[%d]=%v", i, bids[i])
		}
		if !(exec[i] > 0) || math.IsInf(exec[i], 0) {
			return nil, fmt.Errorf("core: invalid execution value w̃[%d]=%v", i, exec[i])
		}
	}
	in := dlt.Instance{Network: m.Network, Z: m.Z, W: append([]float64(nil), bids...)}
	alloc, err := dlt.PipelinedAllocation(in)
	if err != nil {
		return nil, err
	}
	msBid, err := dlt.MultiRoundMakespanWithSpeeds(in, alloc, rounds, policy, bids)
	if err != nil {
		return nil, err
	}
	out := &Outcome{
		Alloc:            alloc,
		Compensation:     make([]float64, n),
		Bonus:            make([]float64, n),
		Payment:          make([]float64, n),
		Valuation:        make([]float64, n),
		Utility:          make([]float64, n),
		MakespanWithout:  make([]float64, n),
		MakespanRealized: make([]float64, n),
		MakespanBid:      msBid,
	}
	speeds := make([]float64, n)
	for i := 0; i < n; i++ {
		sub, err := in.Without(i)
		if err != nil {
			return nil, err
		}
		subAlloc, err := dlt.PipelinedAllocation(sub)
		if err != nil {
			return nil, err
		}
		tWithout, err := dlt.MultiRoundMakespanWithSpeeds(sub, subAlloc, rounds, policy, sub.W)
		if err != nil {
			return nil, err
		}
		copy(speeds, bids)
		if rule == WithVerification {
			speeds[i] = exec[i]
		}
		tRealized, err := dlt.MultiRoundMakespanWithSpeeds(in, alloc, rounds, policy, speeds)
		if err != nil {
			return nil, err
		}
		out.MakespanWithout[i] = tWithout
		out.MakespanRealized[i] = tRealized
		out.Compensation[i] = alloc[i] * exec[i]
		out.Bonus[i] = tWithout - tRealized
		out.Payment[i] = out.Compensation[i] + out.Bonus[i]
		out.Valuation[i] = -alloc[i] * exec[i]
		out.Utility[i] = out.Payment[i] + out.Valuation[i]
		out.UserCost += out.Payment[i]
	}
	return out, nil
}
