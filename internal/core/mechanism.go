// Package core implements the paper's primary contribution: the DLS-BL
// compensation-and-bonus mechanism with verification for one-parameter
// agents (Section 3), which DLS-BL-NCP (Section 4, internal/protocol)
// executes in a distributed fashion.
//
// Each agent i privately knows its true per-unit processing time t_i = w_i,
// reports a bid b_i, and after receiving its load fraction executes it at
// an observed execution value w̃_i ≥ w_i. The mechanism computes
//
//	allocation:    α(b)  — the DLT-optimal split for the bid profile
//	compensation:  C_i(b, w̃) = α_i(b)·w̃_i
//	bonus:         B_i(b, w̃) = T(α(b_{-i}), b_{-i}) − T(α(b), (b_{-i}, w̃_i))
//	payment:       Q_i = C_i + B_i
//
// The agent's valuation is V_i = −α_i(b)·w̃_i (its processing cost), so its
// utility U_i = Q_i + V_i collapses to the bonus B_i: the difference
// between the optimal makespan without it and the makespan it actually
// delivers. Theorem 3.1 (strategyproofness) and Theorem 3.2 (voluntary
// participation) follow; the checkers in verify.go measure both.
package core

import (
	"errors"
	"fmt"
	"math"

	"dlsbl/internal/dlt"
)

// Mechanism is a DLS-BL instance: the network class the processors form
// and the per-unit communication time z. The zero value is not useful;
// construct with the fields set.
type Mechanism struct {
	Network dlt.Network
	Z       float64
}

// PaymentRule selects how the bonus term treats the observed execution
// values. WithVerification is the paper's rule; WithoutVerification is the
// ablation of experiment E12, which evaluates the realized makespan at the
// *bids*, removing the incentive to execute at full speed.
type PaymentRule int

const (
	// WithVerification evaluates the realized makespan at (b_{-i}, w̃_i),
	// the mechanism-with-verification of Definition 3.1.
	WithVerification PaymentRule = iota
	// WithoutVerification evaluates it at the bid vector b, ignoring the
	// meters. Only the ablation benches use it.
	WithoutVerification
)

// String names the rule.
func (r PaymentRule) String() string {
	if r == WithVerification {
		return "verified"
	}
	return "unverified"
}

// Outcome is the full result of running the mechanism on a bid profile and
// the subsequently observed execution values.
type Outcome struct {
	Alloc dlt.Allocation // α(b)

	// Per-agent components, indexed like the bid vector.
	Compensation []float64 // C_i = α_i·w̃_i
	Bonus        []float64 // B_i
	Payment      []float64 // Q_i = C_i + B_i
	Valuation    []float64 // V_i = −α_i·w̃_i
	Utility      []float64 // U_i = Q_i + V_i = B_i

	// MakespanBid is T(α(b), b): what the schedule promises if everyone
	// executes at its bid.
	MakespanBid float64
	// MakespanWithout[i] is T(α(b_{-i}), b_{-i}): the optimal makespan of
	// the system without agent i, the baseline of its bonus.
	MakespanWithout []float64
	// MakespanRealized[i] is T(α(b), (b_{-i}, w̃_i)): the makespan agent
	// i actually delivers given its observed execution value.
	MakespanRealized []float64
	// UserCost is Σ_i Q_i, the bill forwarded to the user.
	UserCost float64
}

// Run executes DLS-BL: computes α(b), then, once the execution values w̃
// are observed, every payment component. bids[i] must be positive and
// exec[i] ≥ bids[i] is NOT required (an agent may execute faster than it
// bid; the bonus then rewards it), but exec[i] must be positive. At least
// two agents are required: the bonus of a lone agent compares against an
// empty system, which has no finite makespan.
//
// Run computes all m marginal economies and realized makespans in O(m)
// total via the prefix/suffix payment engine (see payments.go); RunNaive
// is the per-agent re-solve it replaces, kept for differential testing.
// Callers that run the mechanism repeatedly (experiments, protocol
// rounds, repeated-play dynamics) should hold a PaymentEngine and use
// RunInto to avoid per-run allocations entirely.
func (m Mechanism) Run(bids, exec []float64) (*Outcome, error) {
	return m.run(bids, exec, WithVerification)
}

// RunWithRule is Run with an explicit payment rule; see PaymentRule.
func (m Mechanism) RunWithRule(bids, exec []float64, rule PaymentRule) (*Outcome, error) {
	return m.run(bids, exec, rule)
}

func (m Mechanism) run(bids, exec []float64, rule PaymentRule) (*Outcome, error) {
	e := PaymentEngine{Network: m.Network, Z: m.Z}
	return e.Run(bids, exec, rule)
}

// NewEngine returns a PaymentEngine for this mechanism, for callers that
// want the zero-allocation RunInto hot path across repeated runs.
func (m Mechanism) NewEngine() *PaymentEngine {
	return NewPaymentEngine(m.Network, m.Z)
}

// RunNaive executes DLS-BL by re-solving the DLT recursion from scratch
// for every agent — O(m) solves, O(m²) time and allocations. It is the
// reference implementation the O(m) engine is differentially tested
// against (the two agree to ~1e-12 relative; MakespanWithout is the only
// component computed along a different floating-point path).
func (m Mechanism) RunNaive(bids, exec []float64) (*Outcome, error) {
	return m.runNaive(bids, exec, WithVerification)
}

// RunNaiveWithRule is RunNaive with an explicit payment rule.
func (m Mechanism) RunNaiveWithRule(bids, exec []float64, rule PaymentRule) (*Outcome, error) {
	return m.runNaive(bids, exec, rule)
}

func (m Mechanism) runNaive(bids, exec []float64, rule PaymentRule) (*Outcome, error) {
	n := len(bids)
	if n < 2 {
		return nil, errors.New("core: DLS-BL needs at least two agents")
	}
	if len(exec) != n {
		return nil, fmt.Errorf("core: %d execution values for %d bids", len(exec), n)
	}
	for i := 0; i < n; i++ {
		if !(bids[i] > 0) || math.IsInf(bids[i], 0) {
			return nil, fmt.Errorf("core: invalid bid b[%d]=%v", i, bids[i])
		}
		if !(exec[i] > 0) || math.IsInf(exec[i], 0) {
			return nil, fmt.Errorf("core: invalid execution value w̃[%d]=%v", i, exec[i])
		}
	}
	in := dlt.Instance{Network: m.Network, Z: m.Z, W: append([]float64(nil), bids...)}
	alloc, msBid, err := dlt.OptimalMakespan(in)
	if err != nil {
		return nil, err
	}
	out := &Outcome{
		Alloc:            alloc,
		Compensation:     make([]float64, n),
		Bonus:            make([]float64, n),
		Payment:          make([]float64, n),
		Valuation:        make([]float64, n),
		Utility:          make([]float64, n),
		MakespanWithout:  make([]float64, n),
		MakespanRealized: make([]float64, n),
		MakespanBid:      msBid,
	}
	// The per-agent marginals are independent; at large m the loop shards
	// across GOMAXPROCS (the engine makes this path cold, but bisection
	// cross-checks and differential tests still drive it at scale).
	marginal := func(lo, hi int) error {
		speeds := make([]float64, n)
		for i := lo; i < hi; i++ {
			sub, err := in.Without(i)
			if err != nil {
				return err
			}
			_, tWithout, err := dlt.OptimalMakespan(sub)
			if err != nil {
				return err
			}
			copy(speeds, bids)
			if rule == WithVerification {
				speeds[i] = exec[i]
			}
			tRealized, err := dlt.MakespanWithSpeeds(in, alloc, speeds)
			if err != nil {
				return err
			}
			out.MakespanWithout[i] = tWithout
			out.MakespanRealized[i] = tRealized
			out.Compensation[i] = alloc[i] * exec[i]
			out.Bonus[i] = tWithout - tRealized
			out.Payment[i] = out.Compensation[i] + out.Bonus[i]
			out.Valuation[i] = -alloc[i] * exec[i]
			out.Utility[i] = out.Payment[i] + out.Valuation[i]
		}
		return nil
	}
	if n >= parallelMarginalsMin {
		err = shardedFor(n, marginal)
	} else {
		err = marginal(0, n)
	}
	if err != nil {
		return nil, err
	}
	for i := 0; i < n; i++ {
		out.UserCost += out.Payment[i]
	}
	return out, nil
}

// TruthfulExec returns the execution vector a rational agent picks given
// its true speed: it executes at full capacity, w̃_i = w_i, because slower
// execution only shrinks the bonus. An agent physically cannot run faster
// than its true speed, so when a bid claims b_i < w_i the observed value
// is still w_i.
func TruthfulExec(trueW []float64) []float64 {
	return append([]float64(nil), trueW...)
}
