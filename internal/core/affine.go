package core

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"dlsbl/internal/dlt"
)

// AffineMechanism applies the DLS-BL payment rule on top of the
// affine-cost allocation (dlt.OptimalAffine): fixed per-transfer and
// per-computation overheads are public infrastructure parameters, agents
// still bid a single private w. With overheads it can be optimal to
// leave slow processors out, so the allocation rule acquires a
// PARTICIPATION THRESHOLD — a structural feature the linear model lacks,
// and a known danger zone for incentives. Whether strategyproofness
// survives is an empirical question this type exists to answer
// (experiment X12); the construction mirrors Mechanism exactly.
//
// An agent's processing cost keeps the paper's linear form α_i·w̃_i (the
// fixed overheads are infrastructure time, not agent effort), so the
// utility again collapses to the bonus.
type AffineMechanism struct {
	Network dlt.Network
	Z       float64
	Scm     float64 // fixed per-transfer overhead (public)
	Scp     float64 // fixed per-computation overhead (public)
}

// Run executes the affine mechanism on a bid profile and execution
// values.
func (m AffineMechanism) Run(bids, exec []float64) (*Outcome, error) {
	n := len(bids)
	if n < 2 {
		return nil, errors.New("core: affine mechanism needs at least two agents")
	}
	if len(exec) != n {
		return nil, fmt.Errorf("core: %d execution values for %d bids", len(exec), n)
	}
	for i := 0; i < n; i++ {
		if !(bids[i] > 0) || math.IsInf(bids[i], 0) {
			return nil, fmt.Errorf("core: invalid bid b[%d]=%v", i, bids[i])
		}
		if !(exec[i] > 0) || math.IsInf(exec[i], 0) {
			return nil, fmt.Errorf("core: invalid execution value w̃[%d]=%v", i, exec[i])
		}
	}
	base := dlt.AffineInstance{
		Instance: dlt.Instance{Network: m.Network, Z: m.Z, W: append([]float64(nil), bids...)},
		Scm:      m.Scm,
		Scp:      m.Scp,
	}
	alloc, msBid, err := dlt.OptimalAffine(base)
	if err != nil {
		return nil, err
	}
	out := &Outcome{
		Alloc:            alloc,
		Compensation:     make([]float64, n),
		Bonus:            make([]float64, n),
		Payment:          make([]float64, n),
		Valuation:        make([]float64, n),
		Utility:          make([]float64, n),
		MakespanWithout:  make([]float64, n),
		MakespanRealized: make([]float64, n),
		MakespanBid:      msBid,
	}
	// The affine allocation has no closed chain form (the participation
	// threshold couples every marginal re-solve), so this stays a
	// per-agent O(m) loop; at large m it shards across GOMAXPROCS — the
	// generic-path fallback of the payment engine.
	marginal := func(lo, hi int) error {
		speeds := make([]float64, n)
		for i := lo; i < hi; i++ {
			sub, err := base.Instance.Without(i)
			if err != nil {
				return err
			}
			_, tWithout, err := dlt.OptimalAffine(dlt.AffineInstance{Instance: sub, Scm: m.Scm, Scp: m.Scp})
			if err != nil {
				return err
			}
			copy(speeds, bids)
			speeds[i] = exec[i]
			tRealized, err := m.makespanAt(alloc, bids, speeds)
			if err != nil {
				return err
			}
			out.MakespanWithout[i] = tWithout
			out.MakespanRealized[i] = tRealized
			out.Compensation[i] = alloc[i] * exec[i]
			out.Bonus[i] = tWithout - tRealized
			out.Payment[i] = out.Compensation[i] + out.Bonus[i]
			out.Valuation[i] = -alloc[i] * exec[i]
			out.Utility[i] = out.Payment[i] + out.Valuation[i]
		}
		return nil
	}
	var err2 error
	if n >= parallelMarginalsMin {
		err2 = shardedFor(n, marginal)
	} else {
		err2 = marginal(0, n)
	}
	if err2 != nil {
		return nil, err2
	}
	for i := 0; i < n; i++ {
		out.UserCost += out.Payment[i]
	}
	return out, nil
}

// makespanAt evaluates the affine finishing times of a FIXED allocation
// under the given speeds. The fixed overheads hit only processors with
// load, and the transfers run in the SAME public service order the
// allocation rule uses — participants sorted by bid ascending, with the
// NCP originator pinned to its structural slot. Evaluating under any
// other order would spuriously inflate the realized makespan and distort
// every bonus.
func (m AffineMechanism) makespanAt(alloc dlt.Allocation, bids, speeds []float64) (float64, error) {
	n := len(alloc)
	orig := m.Network.Originator(n)
	var served []int // non-originator participants in service order
	for i := 0; i < n; i++ {
		if i != orig && alloc[i] > 0 {
			served = append(served, i)
		}
	}
	sort.SliceStable(served, func(a, b int) bool { return bids[served[a]] < bids[served[b]] })

	ms := 0.0
	record := func(t float64) {
		if t > ms {
			ms = t
		}
	}
	var comm float64
	switch m.Network {
	case dlt.CP:
		for _, i := range served {
			comm += m.Scm + m.Z*alloc[i]
			record(comm + m.Scp + alloc[i]*speeds[i])
		}
	case dlt.NCPFE:
		if alloc[orig] > 0 {
			record(m.Scp + alloc[orig]*speeds[orig])
		}
		for _, i := range served {
			comm += m.Scm + m.Z*alloc[i]
			record(comm + m.Scp + alloc[i]*speeds[i])
		}
	case dlt.NCPNFE:
		for _, i := range served {
			comm += m.Scm + m.Z*alloc[i]
			record(comm + m.Scp + alloc[i]*speeds[i])
		}
		if alloc[orig] > 0 {
			record(comm + m.Scp + alloc[orig]*speeds[orig])
		}
	default:
		return 0, fmt.Errorf("core: unknown network %v", m.Network)
	}
	return ms, nil
}
