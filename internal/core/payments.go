package core

import (
	"errors"
	"fmt"
	"math"
	"runtime"
	"sync"

	"dlsbl/internal/dlt"
)

// This file implements the O(m) payment engine for DLS-BL.
//
// The naive payment computation (RunNaive, kept for differential testing)
// re-solves the DLT recursion from scratch for every agent: the bonus
// term B_i = T(α(b_{-i}), b_{-i}) − T(α(b), (b_{-i}, w̃_i)) needs the
// optimal makespan of the system WITHOUT agent i and the realized
// makespan with agent i's speed substituted, and doing each from scratch
// costs O(m) per agent, O(m²) per mechanism run — the hot loop of every
// experiment sweep, the protocol simulator and repeated-play dynamics.
//
// The engine exploits the product-chain structure of the closed forms
// (Algorithms 2.1/2.2): the equal-finish optimum has unnormalized
// fractions p_0 = 1, p_{j+1} = p_j·k_j with k_j = w_j/(z + w_{j+1}), the
// allocation is α_j = p_j/S with S = Σ_j p_j, and the optimal makespan is
// the head processor's finish time, c·p_head/S with the class-dependent
// head constant c (z + w_head for CP and NCP-NFE, w_head for NCP-FE's
// front-ended originator).
//
// Marginal economies in O(1) each. Deleting an interior agent i splices
// the chain: positions j < i keep their products, and every position
// j > i is rescaled by the SAME factor
//
//	ρ_i = (w_{i-1}/(z + w_{i+1})) · p_{i-1}/p_{i+1} = (z + w_i)/w_i,
//
// because the bridge ratio k'_i = w_{i-1}/(z + w_{i+1}) replaces the pair
// k_{i-1}·k_i and everything telescopes — including the front-end-less
// originator's final link w_{m-2}/w_{m-1}, whose numerator cancels the
// same way. So with prefix sums Pre_i = Σ_{j<i} p_j and suffix sums
// Suf_i = Σ_{j≥i} p_j precomputed once,
//
//	S_{-i} = Pre_i + ρ_i·Suf_{i+1},   T_{-i} = c·p_head/S_{-i},
//
// and the originator-removal cases (NCP→CP degeneration in
// Instance.Without) only change the head constant and which prefix/suffix
// the splice keeps. Every quantity is a ratio of same-scale chain
// products, so the uniform rescaling done by dlt.ChainProducts for large
// m cancels out.
//
// Realized makespans in O(1) each. The substitution (b_{-i}, w̃_i) only
// moves agent i's own finish time: T_j is unchanged for j ≠ i because the
// allocation (hence all bus terms) is fixed by the bids. With the finish
// times under the bids and their prefix/suffix maxima precomputed,
//
//	T(α(b), (b_{-i}, w̃_i)) = max(max_{j≠i} T_j(b), base_i + α_i·w̃_i),
//
// where base_i is agent i's communication-completion offset. This is
// bit-identical to re-evaluating dlt.MakespanWithSpeeds.

// PaymentEngine computes all m payment components of DLS-BL in O(m) time
// and, after the first call at a given m, with zero heap allocations: all
// intermediate aggregates live in scratch buffers owned by the engine and
// the results are written into a caller-provided Outcome whose slices are
// reused in place. An engine is NOT safe for concurrent use; create one
// per goroutine (the zero value with Network/Z set is ready to use).
type PaymentEngine struct {
	Network dlt.Network
	Z       float64

	// Scratch buffers, grown on demand and reused across runs.
	prod []float64 // scaled chain products p_j (dlt.ChainProducts)
	exps []int     // exponent track for ChainProducts renormalization
	pre  []float64 // pre[i] = Σ_{j<i} prod[j], len m+1
	suf  []float64 // suf[i] = Σ_{j≥i} prod[j], len m+1
	fin  []float64 // finish times under the bids
	base []float64 // communication-completion offset of each processor
	pmax []float64 // pmax[i] = max(fin[0..i-1]), len m+1, pmax[0] = -Inf
	smax []float64 // smax[i] = max(fin[i..m-1]), len m+1, smax[m] = -Inf
}

// NewPaymentEngine returns an engine for the given network class and
// per-unit communication time.
func NewPaymentEngine(net dlt.Network, z float64) *PaymentEngine {
	return &PaymentEngine{Network: net, Z: z}
}

// Reserve pre-sizes the scratch buffers for m agents so that the next
// RunInto at that size performs no allocation at all.
func (e *PaymentEngine) Reserve(m int) { e.grow(m) }

func (e *PaymentEngine) grow(m int) {
	if cap(e.prod) < m {
		e.prod = make([]float64, m)
		e.exps = make([]int, m)
		e.fin = make([]float64, m)
		e.base = make([]float64, m)
	}
	e.prod = e.prod[:m]
	e.exps = e.exps[:m]
	e.fin = e.fin[:m]
	e.base = e.base[:m]
	if cap(e.pre) < m+1 {
		e.pre = make([]float64, m+1)
		e.suf = make([]float64, m+1)
		e.pmax = make([]float64, m+1)
		e.smax = make([]float64, m+1)
	}
	e.pre = e.pre[:m+1]
	e.suf = e.suf[:m+1]
	e.pmax = e.pmax[:m+1]
	e.smax = e.smax[:m+1]
}

// reuseFloats resizes *s to n reusing capacity, allocating only on growth.
func reuseFloats(s *[]float64, n int) []float64 {
	if cap(*s) < n {
		*s = make([]float64, n)
	}
	*s = (*s)[:n]
	return *s
}

// Run is a convenience wrapper that allocates a fresh Outcome.
func (e *PaymentEngine) Run(bids, exec []float64, rule PaymentRule) (*Outcome, error) {
	out := &Outcome{}
	if err := e.RunInto(bids, exec, rule, out); err != nil {
		return nil, err
	}
	return out, nil
}

// RunInto executes DLS-BL on the bid profile and observed execution
// values, writing every payment component into out (whose slices are
// resized in place and reused). It is the allocation-free hot path behind
// Mechanism.Run; semantics are identical to the naive O(m²) computation
// (see RunNaive) up to floating-point rounding in MakespanWithout.
func (e *PaymentEngine) RunInto(bids, exec []float64, rule PaymentRule, out *Outcome) error {
	m := len(bids)
	if m < 2 {
		return errors.New("core: DLS-BL needs at least two agents")
	}
	if len(exec) != m {
		return fmt.Errorf("core: %d execution values for %d bids", len(exec), m)
	}
	if math.IsNaN(e.Z) || math.IsInf(e.Z, 0) || e.Z < 0 {
		return fmt.Errorf("dlt: invalid communication time z=%v", e.Z)
	}
	if e.Network != dlt.CP && e.Network != dlt.NCPFE && e.Network != dlt.NCPNFE {
		return fmt.Errorf("dlt: unknown network class %d", int(e.Network))
	}
	for i := 0; i < m; i++ {
		if !(bids[i] > 0) || math.IsInf(bids[i], 0) {
			return fmt.Errorf("core: invalid bid b[%d]=%v", i, bids[i])
		}
		if !(exec[i] > 0) || math.IsInf(exec[i], 0) {
			return fmt.Errorf("core: invalid execution value w̃[%d]=%v", i, exec[i])
		}
	}
	e.grow(m)
	a := dlt.Allocation(reuseFloats((*[]float64)(&out.Alloc), m))
	out.Alloc = a
	comp := reuseFloats(&out.Compensation, m)
	bonus := reuseFloats(&out.Bonus, m)
	pay := reuseFloats(&out.Payment, m)
	val := reuseFloats(&out.Valuation, m)
	util := reuseFloats(&out.Utility, m)
	msWithout := reuseFloats(&out.MakespanWithout, m)
	msRealized := reuseFloats(&out.MakespanRealized, m)

	z := e.Z

	// Chain products (uniformly scaled for large m) and the allocation.
	S := dlt.ChainProducts(e.Network, z, bids, e.prod, e.exps)
	for i := 0; i < m; i++ {
		a[i] = e.prod[i] / S
	}

	// Finish times under the bids, mirroring dlt.FinishTimes exactly, plus
	// each processor's communication-completion offset base[i].
	switch e.Network {
	case dlt.CP:
		var comm float64
		for i := 0; i < m; i++ {
			comm += z * a[i]
			e.base[i] = comm
			e.fin[i] = comm + a[i]*bids[i]
		}
	case dlt.NCPFE:
		e.base[0] = 0
		e.fin[0] = a[0] * bids[0]
		var comm float64
		for i := 1; i < m; i++ {
			comm += z * a[i]
			e.base[i] = comm
			e.fin[i] = comm + a[i]*bids[i]
		}
	case dlt.NCPNFE:
		var comm float64
		for i := 0; i < m-1; i++ {
			comm += z * a[i]
			e.base[i] = comm
			e.fin[i] = comm + a[i]*bids[i]
		}
		e.base[m-1] = comm
		e.fin[m-1] = comm + a[m-1]*bids[m-1]
	}

	// Prefix/suffix aggregates: product sums for the marginal economies,
	// finish-time maxima for the realized makespans.
	e.pre[0] = 0
	e.pmax[0] = math.Inf(-1)
	for i := 0; i < m; i++ {
		e.pre[i+1] = e.pre[i] + e.prod[i]
		e.pmax[i+1] = math.Max(e.pmax[i], e.fin[i])
	}
	e.suf[m] = 0
	e.smax[m] = math.Inf(-1)
	for i := m - 1; i >= 0; i-- {
		e.suf[i] = e.suf[i+1] + e.prod[i]
		e.smax[i] = math.Max(e.smax[i+1], e.fin[i])
	}
	msBid := e.pmax[m]
	out.MakespanBid = msBid

	var userCost float64
	for i := 0; i < m; i++ {
		// T(α(b_{-i}), b_{-i}): splice the precomputed aggregates.
		msWithout[i] = e.marginalMakespan(bids, i)

		// T(α(b), (b_{-i}, w̃_i)): only agent i's own finish time moves.
		var tRealized float64
		if rule == WithVerification {
			ti := e.base[i] + a[i]*exec[i]
			tRealized = math.Max(math.Max(e.pmax[i], e.smax[i+1]), ti)
		} else {
			tRealized = msBid
		}
		msRealized[i] = tRealized

		c := a[i] * exec[i]
		comp[i] = c
		bonus[i] = msWithout[i] - tRealized
		pay[i] = c + bonus[i]
		val[i] = -c
		// U_i = Q_i + V_i collapses to B_i exactly; computing it in that
		// form avoids the (C+B)−C cancellation noise of the naive path,
		// so utility curves that are constant in w̃ (e.g. the E12
		// unverified ablation) come out exactly constant.
		util[i] = bonus[i]
		userCost += pay[i]
	}
	out.UserCost = userCost
	return nil
}

// marginalMakespan returns T(α(b_{-i}), b_{-i}), the optimal makespan of
// the system without agent i, in O(1) from the precomputed aggregates.
// The cases follow dlt.Instance.Without: removing a non-originator keeps
// the class; removing an NCP originator degenerates the system to CP over
// the remaining processors (same chain products, CP head constant).
func (e *PaymentEngine) marginalMakespan(bids []float64, i int) float64 {
	m := len(bids)
	z := e.Z
	switch e.Network {
	case dlt.CP:
		if i == 0 {
			// New head is processor 1; its product anchors the subchain.
			return (z + bids[1]) * e.prod[1] / e.suf[1]
		}
		return (z + bids[0]) * e.prod[0] / e.splicedSum(bids, i)
	case dlt.NCPFE:
		if i == 0 {
			// Originator removed: CP over processors 1..m-1.
			return (z + bids[1]) * e.prod[1] / e.suf[1]
		}
		// Front-ended originator stays the head: T = α_1·w_1.
		return bids[0] * e.prod[0] / e.splicedSum(bids, i)
	default: // dlt.NCPNFE
		switch {
		case i == m-1:
			// Originator removed: CP over processors 0..m-2, whose chain
			// products coincide with the NFE ones on that prefix.
			return (z + bids[0]) * e.prod[0] / e.pre[m-1]
		case i == 0:
			if m == 2 {
				// Only the front-end-less originator remains: it holds the
				// load already, so T = w_m with no communication term.
				return bids[1]
			}
			return (z + bids[1]) * e.prod[1] / e.suf[1]
		default:
			return (z + bids[0]) * e.prod[0] / e.splicedSum(bids, i)
		}
	}
}

// splicedSum returns S_{-i} = Pre_i + ρ_i·Suf_{i+1} for an interior or
// tail removal (i ≥ 1), with ρ_i = (z + w_i)/w_i the telescoped rescale
// of every product past the splice.
func (e *PaymentEngine) splicedSum(bids []float64, i int) float64 {
	s := e.pre[i]
	if i+1 < len(bids) {
		s += (e.Z + bids[i]) / bids[i] * e.suf[i+1]
	}
	return s
}

// shardedFor splits [0, n) into GOMAXPROCS contiguous shards and runs
// body on each concurrently. It is the parallel fallback for the generic
// per-agent marginal loops that have no closed chain form (affine costs,
// naive differential paths) at large m; body must only touch state owned
// by its own index range. The first error (by shard order) is returned.
func shardedFor(n int, body func(lo, hi int) error) error {
	p := runtime.GOMAXPROCS(0)
	if p > n {
		p = n
	}
	if p <= 1 {
		return body(0, n)
	}
	chunk := (n + p - 1) / p
	errs := make([]error, p)
	var wg sync.WaitGroup
	for s := 0; s < p; s++ {
		lo := s * chunk
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(s, lo, hi int) {
			defer wg.Done()
			errs[s] = body(lo, hi)
		}(s, lo, hi)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// parallelMarginalsMin is the m above which the generic per-agent
// marginal loops (naive and affine paths) shard across GOMAXPROCS. Below
// it the goroutine fan-out costs more than the loop.
const parallelMarginalsMin = 128
