package core

import (
	"errors"
	"fmt"
	"math"

	"dlsbl/internal/dlt"
)

// LinearMechanism extends DLS-BL to the daisy-chain network
// (dlt.LinearInstance): the chain position of every processor is fixed
// physical infrastructure (who is wired to whom), z is public, and the
// agents bid their processing times. The allocation is the chain's
// equal-finish optimum for the reported profile, so the compensation-and-
// bonus payments remain strategyproof by the Theorem 3.1 argument.
//
// The bonus baseline T_{-i} treats the non-participating processor as a
// pure store-and-forward relay: it stays wired into the chain (data for
// downstream processors still crosses its hop) but computes nothing.
// Splicing the node out entirely would be wrong — a slow processor would
// then appear to *harm* the system merely by existing, and voluntary
// participation would fail.
type LinearMechanism struct {
	// Z is the public per-unit transfer time of every hop.
	Z float64
}

// Run executes the chain mechanism on a bid profile and observed
// execution values.
func (m LinearMechanism) Run(bids, exec []float64) (*Outcome, error) {
	n := len(bids)
	if n < 2 {
		return nil, errors.New("core: linear mechanism needs at least two agents")
	}
	if len(exec) != n {
		return nil, fmt.Errorf("core: %d execution values for %d bids", len(exec), n)
	}
	if !(m.Z >= 0) || math.IsInf(m.Z, 0) {
		return nil, fmt.Errorf("core: invalid z=%v", m.Z)
	}
	for i := 0; i < n; i++ {
		if !(bids[i] > 0) || math.IsInf(bids[i], 0) {
			return nil, fmt.Errorf("core: invalid bid b[%d]=%v", i, bids[i])
		}
		if !(exec[i] > 0) || math.IsInf(exec[i], 0) {
			return nil, fmt.Errorf("core: invalid execution value w̃[%d]=%v", i, exec[i])
		}
	}
	chain := dlt.LinearInstance{Z: m.Z, W: append([]float64(nil), bids...)}
	alloc, msBid, err := dlt.OptimalLinearMakespan(chain)
	if err != nil {
		return nil, err
	}
	out := &Outcome{
		Alloc:            alloc,
		Compensation:     make([]float64, n),
		Bonus:            make([]float64, n),
		Payment:          make([]float64, n),
		Valuation:        make([]float64, n),
		Utility:          make([]float64, n),
		MakespanWithout:  make([]float64, n),
		MakespanRealized: make([]float64, n),
		MakespanBid:      msBid,
	}
	for i := 0; i < n; i++ {
		active := make([]bool, n)
		for j := range active {
			active[j] = j != i
		}
		subAlloc, err := dlt.OptimalLinearSubset(chain, active)
		if err != nil {
			return nil, err
		}
		tWithout, err := dlt.LinearMakespan(chain, subAlloc)
		if err != nil {
			return nil, err
		}
		speeds := append([]float64(nil), bids...)
		speeds[i] = exec[i]
		tRealized, err := dlt.LinearMakespan(dlt.LinearInstance{Z: m.Z, W: speeds}, alloc)
		if err != nil {
			return nil, err
		}
		out.MakespanWithout[i] = tWithout
		out.MakespanRealized[i] = tRealized
		out.Compensation[i] = alloc[i] * exec[i]
		out.Bonus[i] = tWithout - tRealized
		out.Payment[i] = out.Compensation[i] + out.Bonus[i]
		out.Valuation[i] = -alloc[i] * exec[i]
		out.Utility[i] = out.Payment[i] + out.Valuation[i]
		out.UserCost += out.Payment[i]
	}
	return out, nil
}
