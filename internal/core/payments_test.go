package core

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"dlsbl/internal/dlt"
)

// outcomeTol is the agreement required between the O(m) engine and the
// naive per-agent re-solve. The only component computed along a different
// floating-point path is MakespanWithout (splice of prefix/suffix
// aggregates vs a fresh chain solve), which agrees to ~1e-13 relative;
// everything downstream inherits that.
const outcomeTol = 1e-10

func requireClose(t *testing.T, what string, got, want, scaleFloor float64) {
	t.Helper()
	scale := math.Max(scaleFloor, math.Max(1, math.Abs(want)))
	if math.IsNaN(got) || math.Abs(got-want) > outcomeTol*scale {
		t.Fatalf("%s: fast %v vs naive %v (diff %v)", what, got, want, got-want)
	}
}

func requireOutcomesMatch(t *testing.T, fast, naive *Outcome) {
	t.Helper()
	// Bonus = MakespanWithout − MakespanRealized cancels when the two are
	// close, so its absolute error is bounded by tol × the makespan
	// magnitude, not tol × the (tiny) difference. Payments, utilities and
	// the user cost inherit that. Scale the comparison by the largest
	// intermediate magnitude — on the paper's regime instances this floor
	// is O(1) and the check is the plain 1e-10 bar.
	scale := 0.0
	for i := range naive.Alloc {
		scale = math.Max(scale, math.Abs(naive.MakespanWithout[i]))
		scale = math.Max(scale, math.Abs(naive.Compensation[i]))
	}
	requireClose(t, "MakespanBid", fast.MakespanBid, naive.MakespanBid, 0)
	requireClose(t, "UserCost", fast.UserCost, naive.UserCost, float64(len(naive.Alloc))*scale)
	for i := range naive.Alloc {
		requireClose(t, fmt.Sprintf("Alloc[%d]", i), fast.Alloc[i], naive.Alloc[i], 0)
		requireClose(t, fmt.Sprintf("MakespanWithout[%d]", i), fast.MakespanWithout[i], naive.MakespanWithout[i], 0)
		requireClose(t, fmt.Sprintf("MakespanRealized[%d]", i), fast.MakespanRealized[i], naive.MakespanRealized[i], 0)
		requireClose(t, fmt.Sprintf("Compensation[%d]", i), fast.Compensation[i], naive.Compensation[i], 0)
		requireClose(t, fmt.Sprintf("Bonus[%d]", i), fast.Bonus[i], naive.Bonus[i], scale)
		requireClose(t, fmt.Sprintf("Payment[%d]", i), fast.Payment[i], naive.Payment[i], scale)
		requireClose(t, fmt.Sprintf("Valuation[%d]", i), fast.Valuation[i], naive.Valuation[i], 0)
		requireClose(t, fmt.Sprintf("Utility[%d]", i), fast.Utility[i], naive.Utility[i], scale)
	}
}

// randomProfile draws a bid/exec profile with bids perturbed off the true
// values and executions at least as slow as physically possible given the
// bid, mirroring what strategic play can produce.
func randomProfile(rng *rand.Rand, in dlt.Instance) (bids, exec []float64) {
	m := in.M()
	bids = make([]float64, m)
	exec = make([]float64, m)
	for i := 0; i < m; i++ {
		bids[i] = in.W[i] * (0.25 + rng.Float64()*3.75)
		exec[i] = math.Max(bids[i], in.W[i]) * (1 + rng.Float64())
	}
	return bids, exec
}

// TestEngineMatchesNaive sweeps all three network classes, both payment
// rules, and m = 2..64 with random bid/exec profiles, asserting the O(m)
// engine and the O(m²) naive path agree on every Outcome component.
func TestEngineMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, net := range dlt.Networks {
		for _, rule := range []PaymentRule{WithVerification, WithoutVerification} {
			for m := 2; m <= 64; m++ {
				for trial := 0; trial < 4; trial++ {
					// Unconstrained z relative to w: the engine must mirror
					// the paper-verbatim algorithms outside the z < w_m
					// regime too (dlt.Optimal's caveat), not only on
					// regime-safe instances.
					in := dlt.RandomInstance(rng, net, m, 0.5, 8, 0.02, 2.0)
					bids, exec := randomProfile(rng, in)
					mech := Mechanism{Network: net, Z: in.Z}
					fast, err := mech.RunWithRule(bids, exec, rule)
					if err != nil {
						t.Fatalf("%v m=%d rule=%v: fast: %v", net, m, rule, err)
					}
					naive, err := mech.RunNaiveWithRule(bids, exec, rule)
					if err != nil {
						t.Fatalf("%v m=%d rule=%v: naive: %v", net, m, rule, err)
					}
					requireOutcomesMatch(t, fast, naive)
				}
			}
		}
	}
}

// TestEngineMatchesNaiveLarge spot-checks parity at the scales the
// engine exists for, including past the raw-product underflow point of
// the unrenormalized recursion (m ≈ 500 on a fast bus).
func TestEngineMatchesNaiveLarge(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, net := range dlt.Networks {
		for _, m := range []int{128, 512, 2048} {
			in := dlt.RandomInstance(rng, net, m, 0.5, 8, 0.02, 0.49)
			bids, exec := randomProfile(rng, in)
			mech := Mechanism{Network: net, Z: in.Z}
			fast, err := mech.Run(bids, exec)
			if err != nil {
				t.Fatalf("%v m=%d: fast: %v", net, m, err)
			}
			naive, err := mech.RunNaive(bids, exec)
			if err != nil {
				t.Fatalf("%v m=%d: naive: %v", net, m, err)
			}
			requireOutcomesMatch(t, fast, naive)
		}
	}
}

// TestEngineValidation checks the engine rejects what the naive path
// rejects.
func TestEngineValidation(t *testing.T) {
	eng := NewPaymentEngine(dlt.NCPFE, 0.2)
	var out Outcome
	cases := []struct {
		name       string
		bids, exec []float64
	}{
		{"one agent", []float64{1}, []float64{1}},
		{"length mismatch", []float64{1, 2}, []float64{1}},
		{"zero bid", []float64{0, 2}, []float64{1, 2}},
		{"negative bid", []float64{-1, 2}, []float64{1, 2}},
		{"NaN bid", []float64{math.NaN(), 2}, []float64{1, 2}},
		{"inf exec", []float64{1, 2}, []float64{1, math.Inf(1)}},
		{"zero exec", []float64{1, 2}, []float64{1, 0}},
	}
	for _, c := range cases {
		if err := eng.RunInto(c.bids, c.exec, WithVerification, &out); err == nil {
			t.Errorf("%s: expected error", c.name)
		}
	}
	if err := (&PaymentEngine{Network: dlt.NCPFE, Z: -1}).RunInto([]float64{1, 2}, []float64{1, 2}, WithVerification, &out); err == nil {
		t.Error("negative z: expected error")
	}
	if err := (&PaymentEngine{Network: dlt.Network(9), Z: 0.1}).RunInto([]float64{1, 2}, []float64{1, 2}, WithVerification, &out); err == nil {
		t.Error("unknown network: expected error")
	}
}

// TestRunIntoZeroAllocs is the allocs-per-op guard of the scratch-buffer
// path: after the first run at a given m, RunInto must not allocate.
func TestRunIntoZeroAllocs(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, net := range dlt.Networks {
		for _, m := range []int{2, 16, 64, 512} {
			in := dlt.RandomInstance(rng, net, m, 0.5, 8, 0.02, 0.49)
			bids, exec := randomProfile(rng, in)
			eng := NewPaymentEngine(net, in.Z)
			var out Outcome
			// Warm-up run sizes every buffer.
			if err := eng.RunInto(bids, exec, WithVerification, &out); err != nil {
				t.Fatalf("%v m=%d: %v", net, m, err)
			}
			allocs := testing.AllocsPerRun(100, func() {
				if err := eng.RunInto(bids, exec, WithVerification, &out); err != nil {
					t.Fatal(err)
				}
			})
			if allocs != 0 {
				t.Errorf("%v m=%d: RunInto allocated %.1f times per run, want 0", net, m, allocs)
			}
		}
	}
}

// TestReserve checks that Reserve pre-sizes the scratch so even the FIRST
// RunInto at that size does not grow engine state (Outcome buffers still
// size themselves on first use).
func TestReserve(t *testing.T) {
	eng := NewPaymentEngine(dlt.CP, 0.1)
	eng.Reserve(32)
	bids := make([]float64, 32)
	exec := make([]float64, 32)
	for i := range bids {
		bids[i] = 1 + float64(i%7)
		exec[i] = bids[i]
	}
	var out Outcome
	if err := eng.RunInto(bids, exec, WithVerification, &out); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(50, func() {
		if err := eng.RunInto(bids, exec, WithVerification, &out); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("RunInto after Reserve allocated %.1f times per run, want 0", allocs)
	}
}

// FuzzEngineParity is the native-fuzz form of the differential test: any
// positive bid/exec profile the fuzzer can construct must produce
// matching payments on the fast and naive paths.
func FuzzEngineParity(f *testing.F) {
	f.Add(int64(1), uint8(0), uint8(4), 0.2)
	f.Add(int64(7), uint8(1), uint8(13), 0.05)
	f.Add(int64(42), uint8(2), uint8(64), 1.5)
	f.Fuzz(func(t *testing.T, seed int64, netRaw, mRaw uint8, z float64) {
		if math.IsNaN(z) || math.IsInf(z, 0) || z < 0 || z > 1e6 {
			t.Skip()
		}
		net := dlt.Networks[int(netRaw)%len(dlt.Networks)]
		m := 2 + int(mRaw)%63
		rng := rand.New(rand.NewSource(seed))
		w := make([]float64, m)
		for i := range w {
			w[i] = math.Ldexp(1+rng.Float64(), rng.Intn(21)-10) // w ∈ [2^-10, 2^11)
		}
		in := dlt.Instance{Network: net, Z: z, W: w}
		bids, exec := randomProfile(rng, in)
		mech := Mechanism{Network: net, Z: z}
		fast, errFast := mech.Run(bids, exec)
		naive, errNaive := mech.RunNaive(bids, exec)
		if (errFast == nil) != (errNaive == nil) {
			t.Fatalf("error mismatch: fast %v, naive %v", errFast, errNaive)
		}
		if errFast != nil {
			return
		}
		requireOutcomesMatch(t, fast, naive)
	})
}
