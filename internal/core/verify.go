package core

import (
	"fmt"
	"math"
	"math/rand"

	"dlsbl/internal/dlt"
)

// This file contains the empirical property checkers behind experiments
// E6 (strategyproofness), E7 (voluntary participation) and E12
// (verification ablation). They measure the utilities the mechanism
// *actually* hands out — the theorems claim shapes, the checkers verify
// them on concrete instances.

// SweepPoint is one sample of a bid- or execution-value sweep for a single
// agent while everyone else stays truthful.
type SweepPoint struct {
	Ratio   float64 // b_i/t_i (bid sweep) or w̃_i/t_i (exec sweep)
	Bid     float64
	Exec    float64
	Utility float64
}

// UtilityDeviating returns agent i's utility when it bids `bid` and
// executes at `exec` while every other agent bids truthfully and executes
// at full speed. trueW are the private values t.
func (m Mechanism) UtilityDeviating(trueW []float64, i int, bid, exec float64) (float64, error) {
	if i < 0 || i >= len(trueW) {
		return 0, fmt.Errorf("core: agent %d out of range", i)
	}
	bids := append([]float64(nil), trueW...)
	bids[i] = bid
	execs := TruthfulExec(trueW)
	execs[i] = exec
	out, err := m.Run(bids, execs)
	if err != nil {
		return 0, err
	}
	return out.Utility[i], nil
}

// BidSweep samples agent i's utility across bid ratios b_i/t_i, with the
// agent executing rationally: at its true speed when the bid understates
// it, and at the bid when overstating (hiding the lie from the meter would
// require w̃ = b; executing faster can only raise the bonus, so this is
// the *worst* rational case for truth-telling — if truth still wins here
// it wins everywhere).
func (m Mechanism) BidSweep(trueW []float64, i int, ratios []float64) ([]SweepPoint, error) {
	if i < 0 || i >= len(trueW) {
		return nil, fmt.Errorf("core: agent %d out of range", i)
	}
	// One engine and one Outcome serve the whole sweep: after the first
	// point the per-point mechanism run allocates nothing.
	eng := m.NewEngine()
	var out Outcome
	bids := append([]float64(nil), trueW...)
	execs := TruthfulExec(trueW)
	pts := make([]SweepPoint, 0, len(ratios))
	for _, r := range ratios {
		bid := trueW[i] * r
		exec := math.Max(bid, trueW[i]) // cannot execute faster than t_i
		bids[i], execs[i] = bid, exec
		if err := eng.RunInto(bids, execs, WithVerification, &out); err != nil {
			return nil, err
		}
		pts = append(pts, SweepPoint{Ratio: r, Bid: bid, Exec: exec, Utility: out.Utility[i]})
	}
	return pts, nil
}

// BidSweepFullSpeed is BidSweep with the agent always executing at its
// true speed regardless of the bid (w̃_i = t_i). Under verification the
// observed meter then exposes overbids; this sweep isolates the allocation
// distortion component of the utility loss.
func (m Mechanism) BidSweepFullSpeed(trueW []float64, i int, ratios []float64) ([]SweepPoint, error) {
	if i < 0 || i >= len(trueW) {
		return nil, fmt.Errorf("core: agent %d out of range", i)
	}
	eng := m.NewEngine()
	var out Outcome
	bids := append([]float64(nil), trueW...)
	execs := TruthfulExec(trueW)
	pts := make([]SweepPoint, 0, len(ratios))
	for _, r := range ratios {
		bid := trueW[i] * r
		bids[i] = bid
		if err := eng.RunInto(bids, execs, WithVerification, &out); err != nil {
			return nil, err
		}
		pts = append(pts, SweepPoint{Ratio: r, Bid: bid, Exec: trueW[i], Utility: out.Utility[i]})
	}
	return pts, nil
}

// ExecSweep samples agent i's utility across execution ratios w̃_i/t_i ≥ 1
// with a truthful bid, under the given payment rule. With verification the
// utility must fall as the agent slacks; without verification it must not
// (experiment E12).
func (m Mechanism) ExecSweep(trueW []float64, i int, ratios []float64, rule PaymentRule) ([]SweepPoint, error) {
	if i < 0 || i >= len(trueW) {
		return nil, fmt.Errorf("core: agent %d out of range", i)
	}
	eng := m.NewEngine()
	var out Outcome
	execs := TruthfulExec(trueW)
	pts := make([]SweepPoint, 0, len(ratios))
	for _, r := range ratios {
		if r < 1 {
			return nil, fmt.Errorf("core: execution ratio %v < 1 is physically impossible", r)
		}
		execs[i] = trueW[i] * r
		if err := eng.RunInto(trueW, execs, rule, &out); err != nil {
			return nil, err
		}
		// Utility must reflect the agent's real cost −α_i·w̃_i even when
		// the payment rule ignores w̃ (RunInto already does so: valuation
		// always uses exec).
		pts = append(pts, SweepPoint{Ratio: r, Bid: trueW[i], Exec: execs[i], Utility: out.Utility[i]})
	}
	return pts, nil
}

// Violation describes one empirical counterexample found by a checker.
type Violation struct {
	Agent    int
	Detail   string
	Instance dlt.Instance
}

// RegimeSafeInstance draws a random instance in the regime where the
// paper's allocation algorithms are exactly optimal: z below every w_i
// (communication faster than any computation, the standard DLT operating
// point; for NCP-NFE this is the z < w_m condition of
// dlt.DistributionBeneficial). Outside this regime Algorithm 2.2 is not a
// global optimum and Theorems 3.1/3.2 do not apply — see the doc comment
// on dlt.Optimal.
func RegimeSafeInstance(rng *rand.Rand, net dlt.Network, m int) dlt.Instance {
	return dlt.RandomInstance(rng, net, m, 0.5, 8, 0.02, 0.49)
}

// CheckStrategyproof samples random instances and bid deviations and
// returns every case where a deviating agent obtained strictly more
// utility than the truthful one (beyond tolerance). An empty result is
// the empirical form of Theorem 3.1.
func CheckStrategyproof(rng *rand.Rand, net dlt.Network, trials, m int, tol float64) []Violation {
	var out []Violation
	var res Outcome
	var eng PaymentEngine
	bids := make([]float64, m)
	execs := make([]float64, m)
	for trial := 0; trial < trials; trial++ {
		in := RegimeSafeInstance(rng, net, m)
		eng.Network, eng.Z = net, in.Z
		utility := func(i int, bid, exec float64) (float64, error) {
			copy(bids, in.W)
			copy(execs, in.W)
			bids[i], execs[i] = bid, exec
			if err := eng.RunInto(bids, execs, WithVerification, &res); err != nil {
				return 0, err
			}
			return res.Utility[i], nil
		}
		for i := 0; i < m; i++ {
			truthU, err := utility(i, in.W[i], in.W[i])
			if err != nil {
				out = append(out, Violation{Agent: i, Detail: err.Error(), Instance: in})
				continue
			}
			for k := 0; k < 8; k++ {
				ratio := 0.25 + rng.Float64()*3.75
				bid := in.W[i] * ratio
				exec := math.Max(bid, in.W[i])
				devU, err := utility(i, bid, exec)
				if err != nil {
					out = append(out, Violation{Agent: i, Detail: err.Error(), Instance: in})
					continue
				}
				if devU > truthU+tol {
					out = append(out, Violation{
						Agent:    i,
						Detail:   fmt.Sprintf("bid %.4g (ratio %.3f) yields %.6g > truthful %.6g", bid, ratio, devU, truthU),
						Instance: in,
					})
				}
			}
		}
	}
	return out
}

// CheckVoluntaryParticipation samples random instances with all agents
// truthful and returns every case of negative utility. An empty result is
// the empirical form of Theorem 3.2.
func CheckVoluntaryParticipation(rng *rand.Rand, net dlt.Network, trials, m int, tol float64) []Violation {
	var out []Violation
	var res Outcome
	var eng PaymentEngine
	for trial := 0; trial < trials; trial++ {
		in := RegimeSafeInstance(rng, net, m)
		eng.Network, eng.Z = net, in.Z
		if err := eng.RunInto(in.W, in.W, WithVerification, &res); err != nil {
			out = append(out, Violation{Detail: err.Error(), Instance: in})
			continue
		}
		for i, u := range res.Utility {
			if u < -tol {
				out = append(out, Violation{
					Agent:    i,
					Detail:   fmt.Sprintf("truthful utility %.6g < 0", u),
					Instance: in,
				})
			}
		}
	}
	return out
}
