package core

import (
	"errors"
	"fmt"
	"math"

	"dlsbl/internal/dlt"
)

// TwoParamStarMechanism drops the one-parameter restriction the entire
// paper rests on: agents on a star network bid BOTH their processing time
// w AND their link time z. The natural generalization keeps the DLS-BL
// payment shape — serve in reported-z order, split equal-finish, pay
// compensation plus marginal-contribution bonus — but now a bid can buy a
// better SERVICE SLOT, which a one-dimensional bid never could.
//
// Archer–Tardos style constructions only cover single-parameter agents,
// and Nisan–Ronen showed multi-parameter scheduling mechanisms are
// fundamentally harder; this type exists to measure the failure
// empirically (experiment X15) rather than assume it. Transfers are
// observable on the wire, so the realized makespan uses the deviator's
// ACTUAL link time — the analogue of the execution meter.
type TwoParamStarMechanism struct{}

// RunTwoParam executes the mechanism: bidW/bidZ are the reported
// parameters, execW the observed processing rates, actualZ the observed
// link times.
func (TwoParamStarMechanism) RunTwoParam(bidW, bidZ, execW, actualZ []float64) (*Outcome, error) {
	n := len(bidW)
	if n < 2 {
		return nil, errors.New("core: two-param mechanism needs at least two agents")
	}
	if len(bidZ) != n || len(execW) != n || len(actualZ) != n {
		return nil, fmt.Errorf("core: inconsistent vector lengths (%d/%d/%d/%d)", n, len(bidZ), len(execW), len(actualZ))
	}
	for i := 0; i < n; i++ {
		if !(bidW[i] > 0) || !(execW[i] > 0) || math.IsInf(bidW[i], 0) || math.IsInf(execW[i], 0) {
			return nil, fmt.Errorf("core: invalid processing parameter at %d", i)
		}
		if !(bidZ[i] >= 0) || !(actualZ[i] >= 0) || math.IsInf(bidZ[i], 0) || math.IsInf(actualZ[i], 0) {
			return nil, fmt.Errorf("core: invalid link parameter at %d", i)
		}
	}
	alloc, msBid, err := twoParamOptimal(bidZ, bidW)
	if err != nil {
		return nil, err
	}
	out := &Outcome{
		Alloc:            alloc,
		Compensation:     make([]float64, n),
		Bonus:            make([]float64, n),
		Payment:          make([]float64, n),
		Valuation:        make([]float64, n),
		Utility:          make([]float64, n),
		MakespanWithout:  make([]float64, n),
		MakespanRealized: make([]float64, n),
		MakespanBid:      msBid,
	}
	for i := 0; i < n; i++ {
		_, tWithout, err := twoParamOptimal(removeAt(bidZ, i), removeAt(bidW, i))
		if err != nil {
			return nil, err
		}
		// Realized: the allocation and service order stand, but agent i's
		// wire and meter expose its true link and chosen speed.
		z := append([]float64(nil), bidZ...)
		z[i] = actualZ[i]
		w := append([]float64(nil), bidW...)
		w[i] = execW[i]
		order := orderByZ(bidZ) // the schedule was built from the bids
		perm, err := dlt.StarInstance{Z: z, W: w}.Permute(order)
		if err != nil {
			return nil, err
		}
		sa := dlt.StarAllocation{Children: make(dlt.Allocation, n)}
		for pos, idx := range order {
			sa.Children[pos] = alloc[idx]
		}
		tRealized, err := dlt.StarMakespan(perm, sa)
		if err != nil {
			return nil, err
		}
		out.MakespanWithout[i] = tWithout
		out.MakespanRealized[i] = tRealized
		out.Compensation[i] = alloc[i] * execW[i]
		out.Bonus[i] = tWithout - tRealized
		out.Payment[i] = out.Compensation[i] + out.Bonus[i]
		out.Valuation[i] = -alloc[i] * execW[i]
		out.Utility[i] = out.Payment[i] + out.Valuation[i]
		out.UserCost += out.Payment[i]
	}
	return out, nil
}

// twoParamOptimal computes the z-ordered equal-finish allocation for a
// reported (z, w) profile, in agent index order, plus its makespan.
func twoParamOptimal(z, w []float64) (dlt.Allocation, float64, error) {
	if len(w) == 1 {
		// A single remaining agent takes everything over its own link.
		return dlt.Allocation{1}, z[0] + w[0], nil
	}
	order := orderByZ(z)
	perm, err := dlt.StarInstance{Z: z, W: w}.Permute(order)
	if err != nil {
		return nil, 0, err
	}
	sa, err := dlt.OptimalStar(perm)
	if err != nil {
		return nil, 0, err
	}
	ms, err := dlt.StarMakespan(perm, sa)
	if err != nil {
		return nil, 0, err
	}
	alloc := make(dlt.Allocation, len(w))
	for pos, idx := range order {
		alloc[idx] = sa.Children[pos]
	}
	return alloc, ms, nil
}
