package core

import (
	"math"
	"math/rand"
	"testing"
)

func randomLinearMech(rng *rand.Rand, n int) (LinearMechanism, []float64) {
	w := make([]float64, n)
	for i := 0; i < n; i++ {
		w[i] = 0.5 + rng.Float64()*7.5
	}
	return LinearMechanism{Z: 0.02 + rng.Float64()*0.4}, w
}

func TestLinearMechanismValidation(t *testing.T) {
	m := LinearMechanism{Z: 0.2}
	if _, err := m.Run([]float64{1}, []float64{1}); err == nil {
		t.Error("single agent accepted")
	}
	if _, err := m.Run([]float64{1, 2}, []float64{1}); err == nil {
		t.Error("mismatched exec accepted")
	}
	if _, err := m.Run([]float64{0, 2}, []float64{1, 2}); err == nil {
		t.Error("zero bid accepted")
	}
	if _, err := m.Run([]float64{1, 2}, []float64{1, math.NaN()}); err == nil {
		t.Error("NaN exec accepted")
	}
	if _, err := (LinearMechanism{Z: -1}).Run([]float64{1, 2}, []float64{1, 2}); err == nil {
		t.Error("negative z accepted")
	}
}

// TestLinearMechanismTwoChainMatchesBusFE: a 2-chain is the NCP-FE bus,
// so payments coincide.
func TestLinearMechanismTwoChainMatchesBusFE(t *testing.T) {
	rng := rand.New(rand.NewSource(90))
	for trial := 0; trial < 30; trial++ {
		chainMech, w := randomLinearMech(rng, 2)
		busMech := Mechanism{Network: 1 /* dlt.NCPFE */, Z: chainMech.Z}
		co, err := chainMech.Run(w, TruthfulExec(w))
		if err != nil {
			t.Fatal(err)
		}
		bo, err := busMech.Run(w, TruthfulExec(w))
		if err != nil {
			t.Fatal(err)
		}
		for i := range w {
			if relErr(co.Payment[i], bo.Payment[i]) > 1e-9 {
				t.Errorf("Q[%d] chain %v, bus %v", i, co.Payment[i], bo.Payment[i])
			}
		}
	}
}

// TestLinearMechanismStrategyproof: truth-telling dominates on the chain.
func TestLinearMechanismStrategyproof(t *testing.T) {
	rng := rand.New(rand.NewSource(91))
	for trial := 0; trial < 60; trial++ {
		n := 2 + rng.Intn(6)
		mech, w := randomLinearMech(rng, n)
		i := rng.Intn(n)
		truthOut, err := mech.Run(w, TruthfulExec(w))
		if err != nil {
			t.Fatal(err)
		}
		for k := 0; k < 6; k++ {
			ratio := 0.25 + rng.Float64()*3.75
			bids := append([]float64(nil), w...)
			bids[i] = w[i] * ratio
			exec := TruthfulExec(w)
			exec[i] = math.Max(bids[i], w[i])
			devOut, err := mech.Run(bids, exec)
			if err != nil {
				t.Fatal(err)
			}
			if devOut.Utility[i] > truthOut.Utility[i]+1e-9 {
				t.Errorf("n=%d agent %d: ratio %.3f yields %v > truthful %v (z=%v w=%v)",
					n, i, ratio, devOut.Utility[i], truthOut.Utility[i], mech.Z, w)
			}
		}
	}
}

// TestLinearMechanismVoluntaryParticipation: truthful chain agents never
// lose.
func TestLinearMechanismVoluntaryParticipation(t *testing.T) {
	rng := rand.New(rand.NewSource(92))
	for trial := 0; trial < 60; trial++ {
		mech, w := randomLinearMech(rng, 2+rng.Intn(10))
		out, err := mech.Run(w, TruthfulExec(w))
		if err != nil {
			t.Fatal(err)
		}
		for i, u := range out.Utility {
			if u < -1e-9 {
				t.Errorf("truthful agent %d utility %v < 0 (z=%v w=%v)", i, u, mech.Z, w)
			}
		}
	}
}

// TestLinearMechanismSlackPenalized: slow execution shrinks utility.
func TestLinearMechanismSlackPenalized(t *testing.T) {
	mech := LinearMechanism{Z: 0.2}
	w := []float64{1, 2, 3}
	truthOut, err := mech.Run(w, TruthfulExec(w))
	if err != nil {
		t.Fatal(err)
	}
	exec := TruthfulExec(w)
	exec[2] *= 2
	slackOut, err := mech.Run(w, exec)
	if err != nil {
		t.Fatal(err)
	}
	if slackOut.Utility[2] >= truthOut.Utility[2] {
		t.Errorf("slacking utility %v not below truthful %v", slackOut.Utility[2], truthOut.Utility[2])
	}
}
