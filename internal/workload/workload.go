// Package workload models the divisible load itself, as prepared in the
// Initialization phase of DLS-BL-NCP: "The user prepares her data by
// dividing it into small, equal-sized blocks. Each block B has a unique
// identifier I_B appended to it and then the aggregate is signed by the
// user, i.e., S_user(B, I_B)."
//
// Blocks carry the user's Ed25519 signature over (I_B, SHA-256(B)), so the
// referee can substantiate misallocation claims in the Allocating Load
// phase by "comparing the blocks that P_i possesses with the original data
// set" — any substituted or corrupted block fails verification.
package workload

import (
	"crypto/sha256"
	"errors"
	"fmt"
	"math"
	"math/rand"

	"dlsbl/internal/dlt"
	"dlsbl/internal/sig"
)

// BlockKind is the envelope kind used for user block signatures.
const BlockKind = "load-block"

// blockClaim is the signed payload: the block identifier and the digest of
// its data.
type blockClaim struct {
	ID     string `json:"id"`
	Digest []byte `json:"digest"`
}

// Block is one equal-sized unit of the divisible load.
type Block struct {
	ID   string
	Data []byte
	Env  sig.Envelope // S_user(I_B, SHA-256(B))
}

// Verify checks the user's signature and that Data still matches the
// signed digest.
func (b Block) Verify(reg *sig.Registry) error {
	var claim blockClaim
	if err := b.Env.Open(reg, &claim); err != nil {
		return fmt.Errorf("workload: block %s: %w", b.ID, err)
	}
	if claim.ID != b.ID {
		return fmt.Errorf("workload: block %s: signature covers id %s", b.ID, claim.ID)
	}
	digest := sha256.Sum256(b.Data)
	if string(claim.Digest) != string(digest[:]) {
		return fmt.Errorf("workload: block %s: data does not match signed digest", b.ID)
	}
	return nil
}

// Dataset is the user's prepared load: equal-sized signed blocks. A
// dataset from PrepareLazy defers the per-block signatures until Seal —
// the unexported signer is the user's key held for that purpose (nil for
// eagerly prepared datasets, which are fully sealed on construction).
type Dataset struct {
	User   string
	Blocks []Block

	signer *sig.KeyPair
}

// Prepare divides data into ceil(len/blockSize) equal-sized blocks (the
// final block zero-padded to keep sizes equal), appends unique
// identifiers, and signs each aggregate with the user's key.
func Prepare(user *sig.KeyPair, data []byte, blockSize int) (*Dataset, error) {
	ds, err := PrepareLazy(user, data, blockSize)
	if err != nil {
		return nil, err
	}
	if err := ds.Seal(); err != nil {
		return nil, err
	}
	return ds, nil
}

// PrepareLazy chunks and identifies the blocks like Prepare but defers
// the user's per-block Ed25519 signatures until Seal (or Verify, which
// seals first). Signing every block dominates Initialization — ~8·m
// signatures per protocol round at the default granularity — yet the
// envelopes are only consumed when a block's integrity is actually
// contested, so rounds that never open a block skip the cost entirely.
// Sealing is deterministic (Ed25519), so Prepare and PrepareLazy+Seal
// yield bit-identical datasets.
func PrepareLazy(user *sig.KeyPair, data []byte, blockSize int) (*Dataset, error) {
	if user == nil {
		return nil, errors.New("workload: nil user key")
	}
	if blockSize <= 0 {
		return nil, fmt.Errorf("workload: invalid block size %d", blockSize)
	}
	if len(data) == 0 {
		return nil, errors.New("workload: empty data")
	}
	n := (len(data) + blockSize - 1) / blockSize
	ds := &Dataset{User: user.ID, Blocks: make([]Block, 0, n), signer: user}
	for i := 0; i < n; i++ {
		chunk := make([]byte, blockSize)
		lo := i * blockSize
		hi := lo + blockSize
		if hi > len(data) {
			hi = len(data)
		}
		copy(chunk, data[lo:hi])
		id := fmt.Sprintf("%s/block-%06d", user.ID, i)
		ds.Blocks = append(ds.Blocks, Block{ID: id, Data: chunk})
	}
	return ds, nil
}

// Seal signs every still-unsealed block with the user's key. It is a
// no-op on eagerly prepared (or already sealed) datasets.
func (d *Dataset) Seal() error {
	if d.signer == nil {
		return nil
	}
	for i := range d.Blocks {
		b := &d.Blocks[i]
		if len(b.Env.Signature) > 0 {
			continue
		}
		digest := sha256.Sum256(b.Data)
		env, err := sig.Seal(d.signer, BlockKind, blockClaim{ID: b.ID, Digest: digest[:]})
		if err != nil {
			return fmt.Errorf("workload: signing block %d: %w", i, err)
		}
		b.Env = env
	}
	d.signer = nil
	return nil
}

// Verify checks every block of the dataset, sealing lazily prepared
// blocks first.
func (d *Dataset) Verify(reg *sig.Registry) error {
	if len(d.Blocks) == 0 {
		return errors.New("workload: dataset has no blocks")
	}
	if err := d.Seal(); err != nil {
		return err
	}
	seen := make(map[string]bool, len(d.Blocks))
	for _, b := range d.Blocks {
		if seen[b.ID] {
			return fmt.Errorf("workload: duplicate block id %s", b.ID)
		}
		seen[b.ID] = true
		if err := b.Verify(reg); err != nil {
			return err
		}
	}
	return nil
}

// SyntheticData draws a reproducible pseudo-random payload of the given
// size — the stand-in for the user's real data set.
func SyntheticData(rng *rand.Rand, size int) []byte {
	data := make([]byte, size)
	for i := range data {
		data[i] = byte(rng.Intn(256))
	}
	return data
}

// Assignment maps each processor to the half-open block index range
// [Lo, Hi) it must process.
type Assignment struct {
	Lo, Hi int
}

// Count returns the number of blocks in the range.
func (a Assignment) Count() int { return a.Hi - a.Lo }

// Partition converts a fractional allocation into contiguous block
// assignments over nBlocks blocks using cumulative rounding: processor i
// receives blocks [round(nΣ_{j<i}α_j), round(nΣ_{j≤i}α_j)). Every block is
// assigned to exactly one processor and each processor's block count is
// within one block of α_i·n.
func Partition(alloc dlt.Allocation, nBlocks int) ([]Assignment, error) {
	if nBlocks <= 0 {
		return nil, fmt.Errorf("workload: invalid block count %d", nBlocks)
	}
	if err := alloc.Validate(len(alloc)); err != nil {
		return nil, err
	}
	out := make([]Assignment, len(alloc))
	var cum float64
	prev := 0
	for i, a := range alloc {
		cum += a
		hi := int(math.Round(cum * float64(nBlocks)))
		if hi > nBlocks {
			hi = nBlocks
		}
		if hi < prev {
			hi = prev
		}
		out[i] = Assignment{Lo: prev, Hi: hi}
		prev = hi
	}
	// Numerical slack can leave the tail short; the last processor with
	// positive fraction absorbs it.
	if prev < nBlocks {
		for i := len(out) - 1; i >= 0; i-- {
			if alloc[i] > 0 || i == len(out)-1 {
				out[i].Hi = nBlocks
				for j := i + 1; j < len(out); j++ {
					out[j] = Assignment{Lo: nBlocks, Hi: nBlocks}
				}
				break
			}
		}
	}
	return out, nil
}
