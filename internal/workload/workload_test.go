package workload

import (
	"math/rand"
	"testing"
	"testing/quick"

	"dlsbl/internal/dlt"
	"dlsbl/internal/sig"
)

func userAndRegistry(t *testing.T, seed int64) (*sig.KeyPair, *sig.Registry) {
	t.Helper()
	user, err := sig.GenerateKeyPair("user", sig.DeterministicSource(seed))
	if err != nil {
		t.Fatal(err)
	}
	reg := sig.NewRegistry()
	if err := reg.Register(user.ID, user.Public); err != nil {
		t.Fatal(err)
	}
	return user, reg
}

func TestPrepareAndVerify(t *testing.T) {
	user, reg := userAndRegistry(t, 1)
	rng := rand.New(rand.NewSource(1))
	ds, err := Prepare(user, SyntheticData(rng, 1000), 64)
	if err != nil {
		t.Fatal(err)
	}
	// ceil(1000/64) = 16 blocks, all equal-sized.
	if len(ds.Blocks) != 16 {
		t.Fatalf("got %d blocks, want 16", len(ds.Blocks))
	}
	for _, b := range ds.Blocks {
		if len(b.Data) != 64 {
			t.Errorf("block %s has size %d, want 64", b.ID, len(b.Data))
		}
	}
	if err := ds.Verify(reg); err != nil {
		t.Fatalf("fresh dataset failed verification: %v", err)
	}
}

func TestPrepareValidation(t *testing.T) {
	user, _ := userAndRegistry(t, 2)
	if _, err := Prepare(nil, []byte("x"), 4); err == nil {
		t.Error("nil user accepted")
	}
	if _, err := Prepare(user, nil, 4); err == nil {
		t.Error("empty data accepted")
	}
	if _, err := Prepare(user, []byte("x"), 0); err == nil {
		t.Error("zero block size accepted")
	}
}

func TestVerifyDetectsTampering(t *testing.T) {
	user, reg := userAndRegistry(t, 3)
	rng := rand.New(rand.NewSource(3))
	ds, err := Prepare(user, SyntheticData(rng, 256), 32)
	if err != nil {
		t.Fatal(err)
	}

	corrupted := *ds
	corrupted.Blocks = append([]Block(nil), ds.Blocks...)
	blk := corrupted.Blocks[3]
	blk.Data = append([]byte(nil), blk.Data...)
	blk.Data[0] ^= 0xFF
	corrupted.Blocks[3] = blk
	if err := corrupted.Verify(reg); err == nil {
		t.Error("corrupted block data accepted")
	}

	renamed := *ds
	renamed.Blocks = append([]Block(nil), ds.Blocks...)
	blk2 := renamed.Blocks[0]
	blk2.ID = "user/block-999999"
	renamed.Blocks[0] = blk2
	if err := renamed.Verify(reg); err == nil {
		t.Error("renamed block accepted")
	}

	// A block re-signed by someone other than the user must fail.
	mallory, err := sig.GenerateKeyPair("mallory", sig.DeterministicSource(4))
	if err != nil {
		t.Fatal(err)
	}
	if err := reg.Register(mallory.ID, mallory.Public); err != nil {
		t.Fatal(err)
	}
	forged := *ds
	forged.Blocks = append([]Block(nil), ds.Blocks...)
	fb := forged.Blocks[1]
	env, err := sig.Seal(mallory, BlockKind, map[string]any{"id": fb.ID, "digest": []byte{1}})
	if err != nil {
		t.Fatal(err)
	}
	fb.Env = env
	forged.Blocks[1] = fb
	if err := forged.Verify(reg); err == nil {
		t.Error("foreign-signed block accepted")
	}
}

func TestVerifyDetectsDuplicates(t *testing.T) {
	user, reg := userAndRegistry(t, 5)
	rng := rand.New(rand.NewSource(5))
	ds, err := Prepare(user, SyntheticData(rng, 128), 32)
	if err != nil {
		t.Fatal(err)
	}
	ds.Blocks = append(ds.Blocks, ds.Blocks[0])
	if err := ds.Verify(reg); err == nil {
		t.Error("duplicate block id accepted")
	}
	empty := &Dataset{User: user.ID}
	if err := empty.Verify(reg); err == nil {
		t.Error("empty dataset accepted")
	}
}

func TestPartitionExactCover(t *testing.T) {
	alloc := dlt.Allocation{0.5, 0.3, 0.2}
	asg, err := Partition(alloc, 10)
	if err != nil {
		t.Fatal(err)
	}
	if asg[0].Count() != 5 || asg[1].Count() != 3 || asg[2].Count() != 2 {
		t.Errorf("assignments = %+v", asg)
	}
	if asg[0].Lo != 0 || asg[2].Hi != 10 {
		t.Errorf("ranges do not span dataset: %+v", asg)
	}
}

func TestPartitionZeroFractions(t *testing.T) {
	alloc := dlt.Allocation{1, 0, 0}
	asg, err := Partition(alloc, 7)
	if err != nil {
		t.Fatal(err)
	}
	if asg[0].Count() != 7 || asg[1].Count() != 0 || asg[2].Count() != 0 {
		t.Errorf("assignments = %+v", asg)
	}
}

// TestPartitionAbsorbsRoundingTail: a feasible allocation whose sum sits
// just below 1 (within FeasibilityTol) can leave the final cumulative
// round short of nBlocks at very fine granularity; the last loaded
// processor absorbs the leftover so every block stays assigned.
func TestPartitionAbsorbsRoundingTail(t *testing.T) {
	alloc := dlt.Allocation{1 - 9e-10, 0, 0}
	const n = 600_000_000
	asg, err := Partition(alloc, n)
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, a := range asg {
		total += a.Count()
	}
	if total != n {
		t.Fatalf("partition covers %d of %d blocks", total, n)
	}
	if asg[len(asg)-1].Hi != n {
		t.Errorf("tail not absorbed: %+v", asg)
	}
}

func TestPartitionValidation(t *testing.T) {
	if _, err := Partition(dlt.Allocation{0.5, 0.5}, 0); err == nil {
		t.Error("zero blocks accepted")
	}
	if _, err := Partition(dlt.Allocation{0.5, 0.4}, 10); err == nil {
		t.Error("non-normalized allocation accepted")
	}
}

// Property: Partition always covers every block exactly once, in order,
// and each count is within one block of the proportional share.
func TestQuickPartitionProperties(t *testing.T) {
	f := func(seed int64, mRaw, nRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		m := 1 + int(mRaw)%16
		n := 1 + int(nRaw)%500
		raw := make(dlt.Allocation, m)
		var sum float64
		for i := range raw {
			raw[i] = rng.Float64()
			sum += raw[i]
		}
		for i := range raw {
			raw[i] /= sum
		}
		asg, err := Partition(raw, n)
		if err != nil {
			return false
		}
		prev := 0
		for i, a := range asg {
			if a.Lo != prev || a.Hi < a.Lo {
				return false
			}
			prev = a.Hi
			share := raw[i] * float64(n)
			if float64(a.Count()) < share-1.000001 || float64(a.Count()) > share+1.000001 {
				return false
			}
		}
		return prev == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestSyntheticDataReproducible(t *testing.T) {
	a := SyntheticData(rand.New(rand.NewSource(9)), 100)
	b := SyntheticData(rand.New(rand.NewSource(9)), 100)
	if string(a) != string(b) {
		t.Error("same seed produced different data")
	}
	c := SyntheticData(rand.New(rand.NewSource(10)), 100)
	if string(a) == string(c) {
		t.Error("different seeds produced identical data")
	}
}
