// Package stats provides the small numeric helpers used by the experiment
// harness: summary statistics and a log-log least-squares exponent fit used
// to verify the Θ(m²) communication-complexity claim (Theorem 5.4).
package stats

import (
	"errors"
	"math"
	"sort"
)

// Summary holds basic descriptive statistics of a sample.
type Summary struct {
	N      int
	Mean   float64
	Std    float64 // sample standard deviation (n-1 denominator)
	Min    float64
	Max    float64
	Median float64
}

// Summarize computes descriptive statistics for xs. It returns a zero
// Summary when xs is empty.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	s := Summary{N: len(xs), Min: math.Inf(1), Max: math.Inf(-1)}
	var sum float64
	for _, x := range xs {
		sum += x
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
	}
	s.Mean = sum / float64(len(xs))
	var ss float64
	for _, x := range xs {
		d := x - s.Mean
		ss += d * d
	}
	if len(xs) > 1 {
		s.Std = math.Sqrt(ss / float64(len(xs)-1))
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	mid := len(sorted) / 2
	if len(sorted)%2 == 1 {
		s.Median = sorted[mid]
	} else {
		s.Median = (sorted[mid-1] + sorted[mid]) / 2
	}
	return s
}

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 { return Summarize(xs).Mean }

// Quantile returns the q-th sample quantile of xs (q in [0,1]), using
// linear interpolation between order statistics (the common "type 7"
// estimator). It returns 0 for an empty sample; q is clamped to [0,1].
// The fault experiments use it for tail latencies (p95 retransmits,
// makespan inflation) where the mean hides stragglers.
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	} else if q > 1 {
		q = 1
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// LinFit holds the result of an ordinary least-squares line fit y = a + b·x.
type LinFit struct {
	Intercept float64 // a
	Slope     float64 // b
	R2        float64 // coefficient of determination
}

// ErrDegenerate is returned when a fit is requested on fewer than two
// distinct x values.
var ErrDegenerate = errors.New("stats: need at least two distinct x values")

// FitLine computes the ordinary least-squares fit y = a + b·x.
func FitLine(xs, ys []float64) (LinFit, error) {
	if len(xs) != len(ys) {
		return LinFit{}, errors.New("stats: mismatched sample lengths")
	}
	if len(xs) < 2 {
		return LinFit{}, ErrDegenerate
	}
	n := float64(len(xs))
	var sx, sy float64
	for i := range xs {
		sx += xs[i]
		sy += ys[i]
	}
	mx, my := sx/n, sy/n
	var sxx, sxy, syy float64
	for i := range xs {
		dx, dy := xs[i]-mx, ys[i]-my
		sxx += dx * dx
		sxy += dx * dy
		syy += dy * dy
	}
	if sxx == 0 {
		return LinFit{}, ErrDegenerate
	}
	b := sxy / sxx
	a := my - b*mx
	r2 := 1.0
	if syy > 0 {
		var sse float64
		for i := range xs {
			e := ys[i] - (a + b*xs[i])
			sse += e * e
		}
		r2 = 1 - sse/syy
	}
	return LinFit{Intercept: a, Slope: b, R2: r2}, nil
}

// FitPowerLaw fits y = c·x^p by least squares in log-log space and returns
// the exponent p, the constant c and the log-space R². All samples must be
// strictly positive.
func FitPowerLaw(xs, ys []float64) (p, c, r2 float64, err error) {
	if len(xs) != len(ys) {
		return 0, 0, 0, errors.New("stats: mismatched sample lengths")
	}
	lx := make([]float64, 0, len(xs))
	ly := make([]float64, 0, len(ys))
	for i := range xs {
		if xs[i] <= 0 || ys[i] <= 0 {
			return 0, 0, 0, errors.New("stats: power-law fit requires positive samples")
		}
		lx = append(lx, math.Log(xs[i]))
		ly = append(ly, math.Log(ys[i]))
	}
	fit, err := FitLine(lx, ly)
	if err != nil {
		return 0, 0, 0, err
	}
	return fit.Slope, math.Exp(fit.Intercept), fit.R2, nil
}

// RelErr returns |a-b| / max(|a|, |b|, 1). It is the relative-error metric
// used throughout the test suites.
func RelErr(a, b float64) float64 {
	den := math.Max(math.Max(math.Abs(a), math.Abs(b)), 1)
	return math.Abs(a-b) / den
}

// AlmostEqual reports whether a and b agree within relative tolerance tol.
func AlmostEqual(a, b, tol float64) bool { return RelErr(a, b) <= tol }
