package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4})
	if s.N != 4 || s.Mean != 2.5 || s.Min != 1 || s.Max != 4 || s.Median != 2.5 {
		t.Errorf("unexpected summary %+v", s)
	}
	// Sample std of 1..4 = sqrt(5/3).
	if math.Abs(s.Std-math.Sqrt(5.0/3)) > 1e-12 {
		t.Errorf("std = %v", s.Std)
	}
	odd := Summarize([]float64{5, 1, 3})
	if odd.Median != 3 {
		t.Errorf("odd median = %v, want 3", odd.Median)
	}
	if z := Summarize(nil); z.N != 0 || z.Mean != 0 {
		t.Errorf("empty summary = %+v", z)
	}
	one := Summarize([]float64{7})
	if one.Std != 0 || one.Median != 7 || one.Min != 7 || one.Max != 7 {
		t.Errorf("singleton summary = %+v", one)
	}
}

func TestMean(t *testing.T) {
	if Mean([]float64{2, 4}) != 3 {
		t.Error("mean wrong")
	}
	if Mean(nil) != 0 {
		t.Error("empty mean not 0")
	}
}

func TestFitLineExact(t *testing.T) {
	xs := []float64{0, 1, 2, 3}
	ys := []float64{1, 3, 5, 7} // y = 1 + 2x
	fit, err := FitLine(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(fit.Intercept-1) > 1e-12 || math.Abs(fit.Slope-2) > 1e-12 {
		t.Errorf("fit = %+v", fit)
	}
	if math.Abs(fit.R2-1) > 1e-12 {
		t.Errorf("R2 = %v, want 1", fit.R2)
	}
}

func TestFitLineErrors(t *testing.T) {
	if _, err := FitLine([]float64{1}, []float64{1}); err == nil {
		t.Error("single point accepted")
	}
	if _, err := FitLine([]float64{1, 2}, []float64{1}); err == nil {
		t.Error("mismatched lengths accepted")
	}
	if _, err := FitLine([]float64{2, 2}, []float64{1, 3}); err == nil {
		t.Error("vertical data accepted")
	}
}

func TestFitLineConstantY(t *testing.T) {
	fit, err := FitLine([]float64{1, 2, 3}, []float64{5, 5, 5})
	if err != nil {
		t.Fatal(err)
	}
	if fit.Slope != 0 || fit.Intercept != 5 || fit.R2 != 1 {
		t.Errorf("constant fit = %+v", fit)
	}
}

func TestFitPowerLawExact(t *testing.T) {
	// y = 3·x²
	xs := []float64{1, 2, 4, 8, 16}
	ys := make([]float64, len(xs))
	for i, x := range xs {
		ys[i] = 3 * x * x
	}
	p, c, r2, err := FitPowerLaw(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(p-2) > 1e-9 || math.Abs(c-3) > 1e-9 || math.Abs(r2-1) > 1e-9 {
		t.Errorf("power fit p=%v c=%v r2=%v", p, c, r2)
	}
}

func TestFitPowerLawErrors(t *testing.T) {
	if _, _, _, err := FitPowerLaw([]float64{1, -1}, []float64{1, 1}); err == nil {
		t.Error("negative x accepted")
	}
	if _, _, _, err := FitPowerLaw([]float64{1, 2}, []float64{0, 1}); err == nil {
		t.Error("zero y accepted")
	}
	if _, _, _, err := FitPowerLaw([]float64{1}, []float64{1, 2}); err == nil {
		t.Error("mismatched lengths accepted")
	}
}

func TestRelErrAndAlmostEqual(t *testing.T) {
	if RelErr(1, 1) != 0 {
		t.Error("RelErr(1,1) != 0")
	}
	if !AlmostEqual(1e12, 1e12*(1+1e-13), 1e-9) {
		t.Error("AlmostEqual too strict on large values")
	}
	if AlmostEqual(1, 2, 1e-9) {
		t.Error("AlmostEqual(1,2) true")
	}
	// Small absolute differences near zero are measured absolutely.
	if RelErr(0, 1e-12) != 1e-12 {
		t.Errorf("RelErr(0,1e-12) = %v", RelErr(0, 1e-12))
	}
}

// Property: summary invariants Min ≤ Median ≤ Max and Min ≤ Mean ≤ Max.
func TestQuickSummaryInvariants(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + int(nRaw)%100
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = rng.NormFloat64() * 100
		}
		s := Summarize(xs)
		return s.Min <= s.Median+1e-9 && s.Median <= s.Max+1e-9 &&
			s.Min <= s.Mean+1e-9 && s.Mean <= s.Max+1e-9 && s.Std >= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: FitLine recovers a noiseless line exactly.
func TestQuickFitRecoversLine(t *testing.T) {
	f := func(seed int64, aRaw, bRaw float64) bool {
		a := math.Mod(aRaw, 100)
		b := math.Mod(bRaw, 100)
		if math.IsNaN(a) || math.IsNaN(b) {
			return true
		}
		rng := rand.New(rand.NewSource(seed))
		xs := make([]float64, 10)
		ys := make([]float64, 10)
		for i := range xs {
			xs[i] = rng.Float64()*10 + float64(i)
			ys[i] = a + b*xs[i]
		}
		fit, err := FitLine(xs, ys)
		if err != nil {
			return false
		}
		return math.Abs(fit.Intercept-a) < 1e-6 && math.Abs(fit.Slope-b) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{4, 1, 3, 2, 5} // unsorted on purpose
	cases := []struct {
		q, want float64
	}{
		{0, 1}, {1, 5}, {0.5, 3}, {0.25, 2}, {0.75, 4},
		{-1, 1}, {2, 5}, // clamped
		{0.1, 1.4}, // interpolated: 1 + 0.4·(2−1)
	}
	for _, c := range cases {
		if got := Quantile(xs, c.q); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("Quantile(%.2f) = %v, want %v", c.q, got, c.want)
		}
	}
	if got := Quantile(nil, 0.5); got != 0 {
		t.Errorf("Quantile(empty) = %v, want 0", got)
	}
	if got := Quantile([]float64{7}, 0.9); got != 7 {
		t.Errorf("Quantile(single) = %v, want 7", got)
	}
	// Median agreement with Summarize.
	for _, xs := range [][]float64{{1, 2, 3, 4}, {9, 2, 5}, {1, 1, 8, 8}} {
		if q, m := Quantile(xs, 0.5), Summarize(xs).Median; math.Abs(q-m) > 1e-12 {
			t.Errorf("Quantile(0.5)=%v disagrees with Median=%v for %v", q, m, xs)
		}
	}
}

// TestQuantileEdgeCases pins the estimator's contract at the edges the
// service's latency reservoirs can feed it: out-of-range q clamps to
// the extremes, every q of a singleton returns the sample, NaN samples
// sort first (Go's sort.Float64s orders NaN before other values, so
// q=0 surfaces the NaN and q=1 still reaches the true maximum), and
// the input slice is never reordered in place.
func TestQuantileEdgeCases(t *testing.T) {
	xs := []float64{3, 1, 2}
	if got := Quantile(xs, -0.5); got != 1 {
		t.Errorf("Quantile(q=-0.5) = %v, want clamp to min 1", got)
	}
	if got := Quantile(xs, 1.5); got != 3 {
		t.Errorf("Quantile(q=1.5) = %v, want clamp to max 3", got)
	}
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Errorf("Quantile reordered its input: %v", xs)
	}

	for _, q := range []float64{0, 0.25, 1} {
		if got := Quantile([]float64{7}, q); got != 7 {
			t.Errorf("Quantile(single, q=%v) = %v, want 7", q, got)
		}
	}
	if got := Quantile(nil, 0); got != 0 {
		t.Errorf("Quantile(empty, 0) = %v, want 0", got)
	}

	withNaN := []float64{math.NaN(), 1, 2}
	if got := Quantile(withNaN, 0); !math.IsNaN(got) {
		t.Errorf("Quantile(NaN sample, q=0) = %v, want NaN (NaNs sort first)", got)
	}
	if got := Quantile(withNaN, 1); got != 2 {
		t.Errorf("Quantile(NaN sample, q=1) = %v, want 2", got)
	}
}
