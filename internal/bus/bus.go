// Package bus simulates the shared-medium network of the paper: a
// one-port bus interconnecting all processors (and the referee), with an
// atomic broadcast primitive — the paper argues this assumption is
// reasonable because the transmission medium is shared and equidistant
// from all processors, and notes that with atomic broadcast no bid
// commitments are needed.
//
// The bus has two planes:
//
//   - a control plane carrying signed protocol messages (bids, claims,
//     payment vectors). Control messages are timeless but fully accounted:
//     the message and unit counters behind the Θ(m²) communication-
//     complexity measurement (Theorem 5.4) live here;
//   - a data plane carrying load fractions, occupying the one-port medium
//     for α·z virtual time per fraction α, reserved through a
//     sim.Resource so transfers never overlap.
//
// The paper's reliability assumption is optional here: a Bus built with
// NewFaulty carries a seeded FaultPlan that injects message drops,
// duplicates, delays, signature-breaking corruption and queue reordering
// on the control plane, plus latency jitter on the data plane. Every
// transmission carries a logical Nonce so the retry layer in
// internal/protocol can retransmit idempotently and receivers can dedup.
// A nil plan is the reliable bus of the paper and costs nothing extra on
// the delivery path.
package bus

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"dlsbl/internal/obs"
	"dlsbl/internal/sig"
	"dlsbl/internal/sim"
)

// BroadcastAddr is the destination of an atomic broadcast.
const BroadcastAddr = "*"

// Message is one control-plane delivery.
type Message struct {
	From string
	To   string // BroadcastAddr for broadcasts
	Kind string
	Size int // abstract size units, e.g. m for an m-entry payment vector
	// Nonce identifies the logical message: retransmissions reuse it and
	// fault-injected duplicates preserve it, so receivers can treat
	// deliveries idempotently by deduplicating on (From, Nonce).
	Nonce uint64
	Env   sig.Envelope
}

// Stats aggregates control-plane traffic for the communication-complexity
// experiment. A broadcast to m−1 receivers counts as one transmission of
// its size (the medium is shared: one emission reaches everyone), and
// DeliveredUnits additionally tracks per-receiver delivered volume. The
// fault counters record what a FaultPlan did to individual deliveries;
// they are all zero on a reliable bus.
type Stats struct {
	Messages       int // transmissions initiated (broadcast counts once)
	Units          int // Σ size over transmissions
	Deliveries     int // receiver-side message arrivals
	DeliveredUnits int // Σ size over deliveries
	Broadcasts     int
	Unicasts       int

	Dropped    int // deliveries lost (including blackholed endpoints)
	Duplicated int // deliveries that arrived twice
	Delayed    int // deliveries deferred to a later Drain
	Corrupted  int // deliveries with a signature-breaking bit flip
	Reordered  int // deliveries that jumped the receiver's queue
}

// Bus is the simulated network. All methods are safe for concurrent use,
// though the deterministic protocol drives it sequentially.
type Bus struct {
	mu      sync.Mutex
	z       float64
	inboxes map[string][]Message
	// order holds the attached identities sorted; broadcasts iterate it so
	// fault decisions are drawn in a reproducible receiver order.
	order  []string
	staged map[string][]Message // delayed deliveries, released by Drain
	stats  Stats
	port   *sim.Resource
	faults *faultState
	// dead holds endpoints blackholed mid-run by MarkUnresponsive — the
	// fail-stopped processors of a crash-recovery round and the killed
	// primary referee of a failover. Checked before the fault pipeline so
	// it works on a reliable bus too; nil until the first mark.
	dead   map[string]bool
	nonce  uint64
	tracer obs.Tracer
}

// New creates a reliable bus with per-unit-load transfer time z ≥ 0.
func New(z float64) (*Bus, error) { return NewFaulty(z, nil) }

// NewFaulty creates a bus whose control plane misbehaves according to the
// seeded plan. A nil plan yields the reliable bus of the paper.
func NewFaulty(z float64, plan *FaultPlan) (*Bus, error) {
	if !(z >= 0) {
		return nil, fmt.Errorf("bus: invalid transfer time z=%v", z)
	}
	if err := plan.Validate(); err != nil {
		return nil, err
	}
	return &Bus{
		z:       z,
		inboxes: make(map[string][]Message),
		staged:  make(map[string][]Message),
		port:    sim.NewResource("bus"),
		faults:  newFaultState(plan),
	}, nil
}

// Z returns the per-unit transfer time.
func (b *Bus) Z() float64 { return b.z }

// Plan returns the fault plan in force, or nil for a reliable bus.
func (b *Bus) Plan() *FaultPlan {
	if b.faults == nil {
		return nil
	}
	return b.faults.plan
}

// Attach registers an endpoint identity on the bus.
func (b *Bus) Attach(id string) error {
	if id == "" || id == BroadcastAddr {
		return fmt.Errorf("bus: invalid endpoint id %q", id)
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if _, dup := b.inboxes[id]; dup {
		return fmt.Errorf("bus: endpoint %q already attached", id)
	}
	b.inboxes[id] = nil
	i := sort.SearchStrings(b.order, id)
	b.order = append(b.order, "")
	copy(b.order[i+1:], b.order[i:])
	b.order[i] = id
	return nil
}

// Endpoints returns the attached identities, sorted.
func (b *Bus) Endpoints() []string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return append([]string(nil), b.order...)
}

// SetTracer installs an observability tracer on the control plane: every
// delivery outcome (arrival, drop, corruption, duplication, delay,
// reorder) is emitted as an obs event annotated with sender, receiver and
// message kind. A nil tracer (the default) costs nothing on the delivery
// path.
func (b *Bus) SetTracer(t obs.Tracer) {
	b.mu.Lock()
	b.tracer = t
	b.mu.Unlock()
}

// event emits one delivery-pipeline event. Caller holds the mutex.
func (b *Bus) event(kind string, msg Message, to string) {
	if b.tracer == nil {
		return
	}
	b.tracer.Event(obs.Event{Kind: kind, From: msg.From, To: to, Msg: msg.Kind})
}

// NextNonce allocates a fresh logical-message nonce. The retry layer
// tags every transmission of one logical message with the same nonce.
func (b *Bus) NextNonce() uint64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.nonce++
	return b.nonce
}

// deliver appends one delivery to an inbox, running the fault pipeline
// when a plan is active. Caller holds the mutex.
func (b *Bus) deliver(to string, msg Message) {
	if b.dead != nil && (b.dead[msg.From] || b.dead[to]) {
		b.stats.Dropped++
		b.event(obs.EvDrop, msg, to)
		return
	}
	fs := b.faults
	if fs == nil || !fs.plan.active() {
		b.inboxes[to] = append(b.inboxes[to], msg)
		b.stats.Deliveries++
		b.stats.DeliveredUnits += msg.Size
		b.event(obs.EvDeliver, msg, to)
		return
	}
	if fs.unreachable[msg.From] || fs.unreachable[to] {
		b.stats.Dropped++
		b.event(obs.EvDrop, msg, to)
		return
	}
	p := fs.plan
	corrupted := false
	if pr, ok := fs.pairRule(msg.From, to); ok {
		if pr.Drop > 0 && fs.rng.Float64() < pr.Drop {
			b.stats.Dropped++
			b.event(obs.EvDrop, msg, to)
			return
		}
		if pr.Corrupt > 0 && fs.rng.Float64() < pr.Corrupt {
			msg = corruptEnvelope(msg)
			corrupted = true
			b.stats.Corrupted++
			b.event(obs.EvCorrupt, msg, to)
		}
	}
	if p.Drop > 0 && fs.rng.Float64() < p.Drop {
		b.stats.Dropped++
		b.event(obs.EvDrop, msg, to)
		return
	}
	if !corrupted && p.Corrupt > 0 && fs.rng.Float64() < p.Corrupt {
		msg = corruptEnvelope(msg)
		b.stats.Corrupted++
		b.event(obs.EvCorrupt, msg, to)
	}
	copies := 1
	if p.Duplicate > 0 && fs.rng.Float64() < p.Duplicate {
		copies = 2
		b.stats.Duplicated++
		b.event(obs.EvDuplicate, msg, to)
	}
	for c := 0; c < copies; c++ {
		switch {
		case p.Delay > 0 && fs.rng.Float64() < p.Delay:
			b.staged[to] = append(b.staged[to], msg)
			b.stats.Delayed++
			b.event(obs.EvDelay, msg, to)
		case p.Reorder > 0 && len(b.inboxes[to]) > 0 && fs.rng.Float64() < p.Reorder:
			box := b.inboxes[to]
			at := fs.rng.Intn(len(box))
			box = append(box, Message{})
			copy(box[at+1:], box[at:])
			box[at] = msg
			b.inboxes[to] = box
			b.stats.Reordered++
			b.event(obs.EvReorder, msg, to)
		default:
			b.inboxes[to] = append(b.inboxes[to], msg)
		}
		b.stats.Deliveries++
		b.stats.DeliveredUnits += msg.Size
		b.event(obs.EvDeliver, msg, to)
	}
}

// Broadcast atomically delivers the envelope to every endpoint except the
// sender (on a reliable bus — under a FaultPlan individual deliveries may
// be lost or mangled, which is exactly the deviation the retry layer
// exists to absorb). size is the abstract message size in units (a scalar
// bid is 1, an m-vector is m). The transmission is tagged with a fresh
// nonce; use BroadcastTagged to obtain it.
func (b *Bus) Broadcast(from, kind string, env sig.Envelope, size int) error {
	_, err := b.BroadcastTagged(from, kind, env, size, 0)
	return err
}

// BroadcastTagged is Broadcast with an explicit logical nonce; passing 0
// allocates a fresh one. Retransmissions pass the original nonce so
// receivers can deduplicate.
func (b *Bus) BroadcastTagged(from, kind string, env sig.Envelope, size int, nonce uint64) (uint64, error) {
	if size < 0 {
		return 0, errors.New("bus: negative message size")
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if _, ok := b.inboxes[from]; !ok {
		return 0, fmt.Errorf("bus: unknown sender %q", from)
	}
	if nonce == 0 {
		b.nonce++
		nonce = b.nonce
	}
	msg := Message{From: from, To: BroadcastAddr, Kind: kind, Size: size, Nonce: nonce, Env: env}
	b.stats.Messages++
	b.stats.Units += size
	b.stats.Broadcasts++
	for _, id := range b.order {
		if id == from {
			continue
		}
		b.deliver(id, msg)
	}
	return nonce, nil
}

// Send delivers the envelope to a single endpoint under a fresh nonce.
func (b *Bus) Send(from, to, kind string, env sig.Envelope, size int) error {
	_, err := b.SendTagged(from, to, kind, env, size, 0)
	return err
}

// SendTagged is Send with an explicit logical nonce (0 allocates one).
func (b *Bus) SendTagged(from, to, kind string, env sig.Envelope, size int, nonce uint64) (uint64, error) {
	if size < 0 {
		return 0, errors.New("bus: negative message size")
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if _, ok := b.inboxes[from]; !ok {
		return 0, fmt.Errorf("bus: unknown sender %q", from)
	}
	if _, ok := b.inboxes[to]; !ok {
		return 0, fmt.Errorf("bus: unknown receiver %q", to)
	}
	if nonce == 0 {
		b.nonce++
		nonce = b.nonce
	}
	msg := Message{From: from, To: to, Kind: kind, Size: size, Nonce: nonce, Env: env}
	b.stats.Messages++
	b.stats.Units += size
	b.stats.Unicasts++
	b.deliver(to, msg)
	return nonce, nil
}

// Drain removes and returns the endpoint's queued messages in delivery
// order. Deliveries a FaultPlan delayed become visible on the drain after
// the one they missed.
func (b *Bus) Drain(id string) ([]Message, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	box, ok := b.inboxes[id]
	if !ok {
		return nil, fmt.Errorf("bus: unknown endpoint %q", id)
	}
	if staged := b.staged[id]; len(staged) > 0 {
		b.inboxes[id] = staged
		delete(b.staged, id)
	} else {
		b.inboxes[id] = nil
	}
	return box, nil
}

// Stats returns a snapshot of the traffic counters.
func (b *Bus) Stats() Stats {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.stats
}

// MarkUnresponsive blackholes an endpoint's control-plane traffic in
// both directions from this point on — the mid-run analogue of listing
// it in FaultPlan.Unresponsive. The protocol layer calls it when a
// Crash spec fires (the fail-stopped processor) and on referee failover
// (the killed primary). Works on a reliable bus too; subsequent
// deliveries to or from the endpoint count as drops.
func (b *Bus) MarkUnresponsive(id string) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.dead == nil {
		b.dead = make(map[string]bool, 1)
	}
	b.dead[id] = true
}

// ReserveTransfer books the one-port data plane for shipping a load
// fraction: duration frac·z (plus uniform jitter in [0, JitterMax) under a
// FaultPlan), starting no earlier than `earliest`. It returns the
// transfer's [start, end) in virtual time.
func (b *Bus) ReserveTransfer(earliest, frac float64) (start, end float64, err error) {
	return b.ReserveTransferTo(earliest, frac, "")
}

// ReserveTransferTo is ReserveTransfer for a transfer terminating at a
// named endpoint: targeted PairFault rules with a Jitter stretch the
// transfer by an extra uniform [0, Jitter) on top of the plan's global
// JitterMax, modeling a degraded link to that one receiver. An empty
// receiver (or a plan without matching pair rules) reduces exactly to
// ReserveTransfer.
func (b *Bus) ReserveTransferTo(earliest, frac float64, to string) (start, end float64, err error) {
	if frac < 0 {
		return 0, 0, fmt.Errorf("bus: negative fraction %v", frac)
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	dur := frac * b.z
	if fs := b.faults; fs != nil && frac > 0 {
		if fs.plan.JitterMax > 0 {
			dur += fs.rng.Float64() * fs.plan.JitterMax
		}
		if to != "" && fs.pairs != nil {
			// The data plane's sender is the load originator; pair jitter
			// keys on the destination link alone so plans need not name it.
			for _, pr := range fs.plan.Pairs {
				if pr.To == to && pr.Jitter > 0 {
					dur += fs.rng.Float64() * pr.Jitter
				}
			}
		}
	}
	return b.port.Reserve(earliest, dur)
}

// DataPlaneFreeAt returns the time the data plane next becomes idle.
func (b *Bus) DataPlaneFreeAt() float64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.port.FreeAt()
}
