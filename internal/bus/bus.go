// Package bus simulates the shared-medium network of the paper: a
// one-port bus interconnecting all processors (and the referee), with a
// reliable atomic broadcast primitive — the paper argues this assumption
// is reasonable because the transmission medium is shared and equidistant
// from all processors, and notes that with atomic broadcast no bid
// commitments are needed.
//
// The bus has two planes:
//
//   - a control plane carrying signed protocol messages (bids, claims,
//     payment vectors). Control messages are timeless but fully accounted:
//     the message and unit counters behind the Θ(m²) communication-
//     complexity measurement (Theorem 5.4) live here;
//   - a data plane carrying load fractions, occupying the one-port medium
//     for α·z virtual time per fraction α, reserved through a
//     sim.Resource so transfers never overlap.
package bus

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"dlsbl/internal/sig"
	"dlsbl/internal/sim"
)

// BroadcastAddr is the destination of an atomic broadcast.
const BroadcastAddr = "*"

// Message is one control-plane delivery.
type Message struct {
	From string
	To   string // BroadcastAddr for broadcasts
	Kind string
	Size int // abstract size units, e.g. m for an m-entry payment vector
	Env  sig.Envelope
}

// Stats aggregates control-plane traffic for the communication-complexity
// experiment. A broadcast to m−1 receivers counts as one transmission of
// its size (the medium is shared: one emission reaches everyone), and
// DeliveredUnits additionally tracks per-receiver delivered volume.
type Stats struct {
	Messages       int // transmissions initiated (broadcast counts once)
	Units          int // Σ size over transmissions
	Deliveries     int // receiver-side message arrivals
	DeliveredUnits int // Σ size over deliveries
	Broadcasts     int
	Unicasts       int
}

// Bus is the simulated network. All methods are safe for concurrent use,
// though the deterministic protocol drives it sequentially.
type Bus struct {
	mu      sync.Mutex
	z       float64
	inboxes map[string][]Message
	stats   Stats
	port    *sim.Resource
}

// New creates a bus with per-unit-load transfer time z ≥ 0.
func New(z float64) (*Bus, error) {
	if !(z >= 0) {
		return nil, fmt.Errorf("bus: invalid transfer time z=%v", z)
	}
	return &Bus{
		z:       z,
		inboxes: make(map[string][]Message),
		port:    sim.NewResource("bus"),
	}, nil
}

// Z returns the per-unit transfer time.
func (b *Bus) Z() float64 { return b.z }

// Attach registers an endpoint identity on the bus.
func (b *Bus) Attach(id string) error {
	if id == "" || id == BroadcastAddr {
		return fmt.Errorf("bus: invalid endpoint id %q", id)
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if _, dup := b.inboxes[id]; dup {
		return fmt.Errorf("bus: endpoint %q already attached", id)
	}
	b.inboxes[id] = nil
	return nil
}

// Endpoints returns the attached identities, sorted.
func (b *Bus) Endpoints() []string {
	b.mu.Lock()
	defer b.mu.Unlock()
	ids := make([]string, 0, len(b.inboxes))
	for id := range b.inboxes {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

// Broadcast atomically delivers the envelope to every endpoint except the
// sender. By construction every receiver sees the identical message — the
// paper's atomic-broadcast assumption. size is the abstract message size
// in units (a scalar bid is 1, an m-vector is m).
func (b *Bus) Broadcast(from, kind string, env sig.Envelope, size int) error {
	if size < 0 {
		return errors.New("bus: negative message size")
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if _, ok := b.inboxes[from]; !ok {
		return fmt.Errorf("bus: unknown sender %q", from)
	}
	msg := Message{From: from, To: BroadcastAddr, Kind: kind, Size: size, Env: env}
	b.stats.Messages++
	b.stats.Units += size
	b.stats.Broadcasts++
	for id := range b.inboxes {
		if id == from {
			continue
		}
		b.inboxes[id] = append(b.inboxes[id], msg)
		b.stats.Deliveries++
		b.stats.DeliveredUnits += size
	}
	return nil
}

// Send delivers the envelope to a single endpoint.
func (b *Bus) Send(from, to, kind string, env sig.Envelope, size int) error {
	if size < 0 {
		return errors.New("bus: negative message size")
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if _, ok := b.inboxes[from]; !ok {
		return fmt.Errorf("bus: unknown sender %q", from)
	}
	if _, ok := b.inboxes[to]; !ok {
		return fmt.Errorf("bus: unknown receiver %q", to)
	}
	msg := Message{From: from, To: to, Kind: kind, Size: size, Env: env}
	b.stats.Messages++
	b.stats.Units += size
	b.stats.Unicasts++
	b.stats.Deliveries++
	b.stats.DeliveredUnits += size
	b.inboxes[to] = append(b.inboxes[to], msg)
	return nil
}

// Drain removes and returns the endpoint's queued messages in delivery
// order.
func (b *Bus) Drain(id string) ([]Message, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	box, ok := b.inboxes[id]
	if !ok {
		return nil, fmt.Errorf("bus: unknown endpoint %q", id)
	}
	b.inboxes[id] = nil
	return box, nil
}

// Stats returns a snapshot of the traffic counters.
func (b *Bus) Stats() Stats {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.stats
}

// ReserveTransfer books the one-port data plane for shipping a load
// fraction: duration frac·z, starting no earlier than `earliest`. It
// returns the transfer's [start, end) in virtual time.
func (b *Bus) ReserveTransfer(earliest, frac float64) (start, end float64, err error) {
	if frac < 0 {
		return 0, 0, fmt.Errorf("bus: negative fraction %v", frac)
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.port.Reserve(earliest, frac*b.z)
}

// DataPlaneFreeAt returns the time the data plane next becomes idle.
func (b *Bus) DataPlaneFreeAt() float64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.port.FreeAt()
}
