package bus

import (
	"reflect"
	"testing"

	"dlsbl/internal/obs"
)

func TestFaultPlanValidatePairsAndCrashes(t *testing.T) {
	bad := []*FaultPlan{
		{Pairs: []PairFault{{From: "", To: "P2", Drop: 1}}},
		{Pairs: []PairFault{{From: "P1", To: "P1", Drop: 1}}},
		{Pairs: []PairFault{{From: "P1", To: "P2", Drop: 1.5}}},
		{Pairs: []PairFault{{From: "P1", To: "P2", Corrupt: -0.1}}},
		{Pairs: []PairFault{{From: "P1", To: "P2", Jitter: -1}}},
		{Crashes: []Crash{{Proc: ""}}},
		{Crashes: []Crash{{Proc: "P1", Installment: -1}}},
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("invalid plan %d accepted: %+v", i, p)
		}
	}
	ok := &FaultPlan{
		Pairs:   []PairFault{{From: "P1", To: "P2", Drop: 1, Corrupt: 0.5, Jitter: 0.1}},
		Crashes: []Crash{{Proc: "P3", Installment: 2}},
	}
	if err := ok.Validate(); err != nil {
		t.Errorf("valid targeted plan rejected: %v", err)
	}
}

func TestDataPlaneActive(t *testing.T) {
	var nilPlan *FaultPlan
	cases := []struct {
		plan *FaultPlan
		want bool
	}{
		{nilPlan, false},
		{&FaultPlan{}, false},
		{&FaultPlan{Drop: 0.5}, false}, // control-plane only
		{&FaultPlan{JitterMax: 0.1}, true},
		{&FaultPlan{Pairs: []PairFault{{From: "P1", To: "P2", Drop: 1}}}, false},
		{&FaultPlan{Pairs: []PairFault{{From: "P1", To: "P2", Jitter: 0.2}}}, true},
	}
	for i, c := range cases {
		if got := c.plan.DataPlaneActive(); got != c.want {
			t.Errorf("case %d: DataPlaneActive = %v, want %v", i, got, c.want)
		}
	}
}

func TestCrashAt(t *testing.T) {
	var nilPlan *FaultPlan
	if got := nilPlan.CrashAt(1); got != nil {
		t.Errorf("nil plan crashes %v", got)
	}
	p := &FaultPlan{Crashes: []Crash{
		{Proc: "P1", Installment: 2},
		{Proc: "P2"}, // Installment 0: every installment
		{Proc: "P3", Installment: 1},
	}}
	if got := p.CrashAt(1); !reflect.DeepEqual(got, []string{"P2", "P3"}) {
		t.Errorf("CrashAt(1) = %v", got)
	}
	if got := p.CrashAt(2); !reflect.DeepEqual(got, []string{"P1", "P2"}) {
		t.Errorf("CrashAt(2) = %v", got)
	}
	if got := p.CrashAt(3); !reflect.DeepEqual(got, []string{"P2"}) {
		t.Errorf("CrashAt(3) = %v", got)
	}
}

func TestPairFaultsTargetOnlyTheirLink(t *testing.T) {
	plan := &FaultPlan{Seed: 9, Pairs: []PairFault{{From: "a", To: "b", Drop: 1}}}
	b := faultyBus(t, plan, "a", "b", "c")
	if got := b.Plan(); got != plan {
		t.Errorf("Plan() = %p, want the configured plan %p", got, plan)
	}
	_, env := sealedBy(t, "a", "x")
	if err := b.Broadcast("a", "k", env, 1); err != nil {
		t.Fatal(err)
	}
	bMsgs, err := b.Drain("b")
	if err != nil {
		t.Fatal(err)
	}
	cMsgs, err := b.Drain("c")
	if err != nil {
		t.Fatal(err)
	}
	if len(bMsgs) != 0 {
		t.Errorf("b received %d messages over its severed inbound link", len(bMsgs))
	}
	if len(cMsgs) != 1 {
		t.Errorf("c received %d messages over its clean link, want 1", len(cMsgs))
	}
	if s := b.Stats(); s.Dropped != 1 {
		t.Errorf("stats = %+v, want exactly 1 drop", s)
	}
}

func TestMarkUnresponsiveMidRun(t *testing.T) {
	b := faultyBus(t, nil, "a", "b")
	_, env := sealedBy(t, "a", "x")
	if err := b.Send("a", "b", "k", env, 1); err != nil {
		t.Fatal(err)
	}
	if msgs, err := b.Drain("b"); err != nil || len(msgs) != 1 {
		t.Fatalf("pre-crash delivery failed: %v, %d messages", err, len(msgs))
	}
	b.MarkUnresponsive("b")
	if err := b.Send("a", "b", "k", env, 1); err != nil {
		t.Fatal(err)
	}
	if msgs, _ := b.Drain("b"); len(msgs) != 0 {
		t.Errorf("dead endpoint still received %d messages", len(msgs))
	}
	if s := b.Stats(); s.Dropped != 1 {
		t.Errorf("stats = %+v, want the post-crash send counted as a drop", s)
	}
}

func TestNextNonceMonotonic(t *testing.T) {
	b := faultyBus(t, nil, "a")
	n1, n2 := b.NextNonce(), b.NextNonce()
	if n2 <= n1 {
		t.Errorf("nonces not monotonic: %d then %d", n1, n2)
	}
}

func TestSetTracerEmitsDeliveryEvents(t *testing.T) {
	b := faultyBus(t, nil, "a", "b")
	rec := obs.NewRecorder()
	b.SetTracer(rec)
	_, env := sealedBy(t, "a", "x")
	if err := b.Send("a", "b", "k", env, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Drain("b"); err != nil {
		t.Fatal(err)
	}
	if len(rec.Records()) == 0 {
		t.Error("tracer saw no delivery events")
	}
}
