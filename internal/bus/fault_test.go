package bus

import (
	"testing"

	"dlsbl/internal/sig"
)

func faultyBus(t testing.TB, plan *FaultPlan, ids ...string) *Bus {
	t.Helper()
	b, err := NewFaulty(0.1, plan)
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range ids {
		if err := b.Attach(id); err != nil {
			t.Fatal(err)
		}
	}
	return b
}

func sealedBy(t testing.TB, id string, v any) (*sig.Registry, sig.Envelope) {
	t.Helper()
	reg := sig.NewRegistry()
	k, err := sig.GenerateKeyPair(id, sig.DeterministicSource(1))
	if err != nil {
		t.Fatal(err)
	}
	if err := reg.Register(id, k.Public); err != nil {
		t.Fatal(err)
	}
	env, err := sig.Seal(k, "test", v)
	if err != nil {
		t.Fatal(err)
	}
	return reg, env
}

func TestFaultPlanValidate(t *testing.T) {
	if err := (&FaultPlan{Drop: 1.5}).Validate(); err == nil {
		t.Error("Drop=1.5 accepted")
	}
	if err := (&FaultPlan{JitterMax: -1}).Validate(); err == nil {
		t.Error("negative jitter accepted")
	}
	if err := (&FaultPlan{Drop: 0.5, Duplicate: 1}).Validate(); err != nil {
		t.Errorf("valid plan rejected: %v", err)
	}
	var nilPlan *FaultPlan
	if err := nilPlan.Validate(); err != nil {
		t.Errorf("nil plan rejected: %v", err)
	}
}

func TestDropLosesDeliveries(t *testing.T) {
	b := faultyBus(t, &FaultPlan{Seed: 7, Drop: 1}, "a", "b", "c")
	_, env := sealedBy(t, "a", "x")
	if err := b.Broadcast("a", "k", env, 1); err != nil {
		t.Fatal(err)
	}
	for _, id := range []string{"b", "c"} {
		msgs, err := b.Drain(id)
		if err != nil {
			t.Fatal(err)
		}
		if len(msgs) != 0 {
			t.Errorf("%s received %d messages through a 100%% drop plan", id, len(msgs))
		}
	}
	if s := b.Stats(); s.Dropped != 2 || s.Deliveries != 0 {
		t.Errorf("stats = %+v, want Dropped=2 Deliveries=0", s)
	}
}

func TestDuplicatePreservesNonce(t *testing.T) {
	b := faultyBus(t, &FaultPlan{Seed: 7, Duplicate: 1}, "a", "b")
	_, env := sealedBy(t, "a", "x")
	nonce, err := b.SendTagged("a", "b", "k", env, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	msgs, err := b.Drain("b")
	if err != nil {
		t.Fatal(err)
	}
	if len(msgs) != 2 {
		t.Fatalf("got %d copies, want 2", len(msgs))
	}
	for _, m := range msgs {
		if m.Nonce != nonce {
			t.Errorf("copy nonce %d, want %d", m.Nonce, nonce)
		}
	}
	if s := b.Stats(); s.Duplicated != 1 {
		t.Errorf("Duplicated = %d, want 1", s.Duplicated)
	}
}

func TestCorruptBreaksSignatureOnly(t *testing.T) {
	b := faultyBus(t, &FaultPlan{Seed: 7, Corrupt: 1}, "a", "b", "c")
	reg, env := sealedBy(t, "a", "payload")
	if err := b.Broadcast("a", "test", env, 1); err != nil {
		t.Fatal(err)
	}
	msgs, err := b.Drain("b")
	if err != nil {
		t.Fatal(err)
	}
	if len(msgs) != 1 {
		t.Fatalf("got %d messages, want 1", len(msgs))
	}
	if err := msgs[0].Env.Verify(reg); err == nil {
		t.Error("corrupted envelope still verifies")
	}
	// The original envelope's backing arrays must be untouched.
	if err := env.Verify(reg); err != nil {
		t.Errorf("corruption mutated the shared original: %v", err)
	}
}

func TestDelayArrivesNextDrain(t *testing.T) {
	b := faultyBus(t, &FaultPlan{Seed: 7, Delay: 1}, "a", "b")
	_, env := sealedBy(t, "a", "x")
	if err := b.Send("a", "b", "k", env, 1); err != nil {
		t.Fatal(err)
	}
	first, err := b.Drain("b")
	if err != nil {
		t.Fatal(err)
	}
	if len(first) != 0 {
		t.Fatalf("delayed message visible on first drain")
	}
	second, err := b.Drain("b")
	if err != nil {
		t.Fatal(err)
	}
	if len(second) != 1 {
		t.Fatalf("delayed message missing on second drain: got %d", len(second))
	}
	if s := b.Stats(); s.Delayed != 1 {
		t.Errorf("Delayed = %d, want 1", s.Delayed)
	}
}

func TestReorderPermutesQueue(t *testing.T) {
	b := faultyBus(t, &FaultPlan{Seed: 3, Reorder: 1}, "a", "b")
	_, env := sealedBy(t, "a", "x")
	for i := 0; i < 5; i++ {
		if err := b.Send("a", "b", "k", env, 1); err != nil {
			t.Fatal(err)
		}
	}
	msgs, err := b.Drain("b")
	if err != nil {
		t.Fatal(err)
	}
	if len(msgs) != 5 {
		t.Fatalf("got %d messages, want 5", len(msgs))
	}
	inOrder := true
	for i := 1; i < len(msgs); i++ {
		if msgs[i].Nonce < msgs[i-1].Nonce {
			inOrder = false
		}
	}
	if inOrder {
		t.Error("100% reorder plan left the queue in FIFO order")
	}
	if s := b.Stats(); s.Reordered == 0 {
		t.Error("Reordered counter is zero")
	}
}

func TestUnresponsiveBlackholesBothDirections(t *testing.T) {
	b := faultyBus(t, &FaultPlan{Seed: 7, Unresponsive: []string{"b"}}, "a", "b", "c")
	_, env := sealedBy(t, "a", "x")
	if err := b.Broadcast("a", "k", env, 1); err != nil {
		t.Fatal(err)
	}
	if err := b.Send("b", "c", "k", env, 1); err != nil {
		t.Fatal(err)
	}
	if msgs, _ := b.Drain("b"); len(msgs) != 0 {
		t.Error("blackholed endpoint received traffic")
	}
	cMsgs, _ := b.Drain("c")
	if len(cMsgs) != 1 || cMsgs[0].From != "a" {
		t.Errorf("c received %v, want only a's broadcast", cMsgs)
	}
	if s := b.Stats(); s.Dropped != 2 {
		t.Errorf("Dropped = %d, want 2 (one to b, one from b)", s.Dropped)
	}
}

func TestFaultDeterminism(t *testing.T) {
	run := func() Stats {
		plan := &FaultPlan{Seed: 99, Drop: 0.2, Duplicate: 0.2, Delay: 0.2, Corrupt: 0.2, Reorder: 0.2}
		b := faultyBus(t, plan, "a", "b", "c", "d")
		_, env := sealedBy(t, "a", "x")
		for i := 0; i < 50; i++ {
			if err := b.Broadcast("a", "k", env, 1); err != nil {
				t.Fatal(err)
			}
			if err := b.Send("b", "c", "k", env, 2); err != nil {
				t.Fatal(err)
			}
		}
		return b.Stats()
	}
	a, b := run(), run()
	if a != b {
		t.Errorf("same seed produced different fault sequences:\n%+v\n%+v", a, b)
	}
	if a.Dropped == 0 || a.Duplicated == 0 || a.Delayed == 0 || a.Corrupted == 0 {
		t.Errorf("mixed plan left a fault class unexercised: %+v", a)
	}
}

func TestJitterStretchesTransfers(t *testing.T) {
	reliable := faultyBus(t, nil, "a")
	jittery := faultyBus(t, &FaultPlan{Seed: 5, JitterMax: 0.5}, "a")
	_, e1, err := reliable.ReserveTransfer(0, 1)
	if err != nil {
		t.Fatal(err)
	}
	_, e2, err := jittery.ReserveTransfer(0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !(e2 > e1) || e2 > e1+0.5 {
		t.Errorf("jittered transfer ends at %v, reliable at %v; want (e1, e1+0.5]", e2, e1)
	}
}

// BenchmarkBroadcastReliable guards the zero-overhead claim for the nil
// FaultPlan: the delivery path must not regress relative to the seed
// implementation (one append + counter updates per receiver).
func BenchmarkBroadcastReliable(b *testing.B) {
	bench := func(b *testing.B, plan *FaultPlan) {
		bus := faultyBus(b, plan, "a", "b", "c", "d", "e", "f", "g", "h")
		_, env := sealedBy(b, "a", "x")
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := bus.Broadcast("a", "k", env, 1); err != nil {
				b.Fatal(err)
			}
			if i%64 == 63 { // keep inboxes bounded
				for _, id := range []string{"b", "c", "d", "e", "f", "g", "h"} {
					if _, err := bus.Drain(id); err != nil {
						b.Fatal(err)
					}
				}
			}
		}
	}
	b.Run("nil-plan", func(b *testing.B) { bench(b, nil) })
	b.Run("mixed-faults", func(b *testing.B) {
		bench(b, &FaultPlan{Seed: 1, Drop: 0.1, Duplicate: 0.05, Delay: 0.1, Corrupt: 0.05, Reorder: 0.1})
	})
}
