package bus

import (
	"dlsbl/internal/obs"
	"dlsbl/internal/sig"
)

// Medium is the control plane the protocol's reliable transport runs
// over: addressed delivery of sealed envelopes between named endpoints.
// The simulated *Bus is the deterministic in-process implementation;
// internal/netbus provides a real UDP implementation so a round can span
// OS processes. The split is deliberate: retry, backoff and
// (sender, nonce) deduplication all live ABOVE the Medium, in
// protocol's transport — a Medium only moves envelopes, and is free to
// lose, duplicate or reorder them (the simulated bus under a FaultPlan
// does so on purpose; a UDP socket does so by nature).
//
// Contract, shared by all implementations:
//
//   - Attach registers an endpoint identity before any traffic touches
//     it. The simulated bus rejects duplicate attachment; long-lived
//     media that survive multiple protocol runs may accept
//     re-attachment of a known endpoint.
//   - BroadcastTagged delivers one emission to every attached endpoint
//     except the sender, iterating endpoints in sorted order so
//     deterministic implementations stay reproducible.
//   - SendTagged unicasts to one endpoint. For both, a zero nonce
//     allocates a fresh logical-message nonce via the medium's counter;
//     retransmissions pass the original nonce so receivers can dedup.
//   - Delivery failure is not an error: a lossy medium swallows the
//     copy (counting it in Stats().Dropped) and returns normally — the
//     transport's retry machinery is the recovery path. Errors are
//     reserved for misuse (unknown endpoint, negative size) and for
//     the medium itself breaking.
//   - Drain removes and returns an endpoint's queued deliveries in
//     arrival order.
//   - Stats reports the cumulative traffic and fault counters; the
//     fault vocabulary (drops, duplicates, …) keeps its meaning on
//     real sockets.
//   - SetTracer installs an obs.Tracer for per-delivery events
//     (deliver/drop/retransmit/dedup_hit); a nil tracer must cost
//     nothing on the delivery path.
//
// The data plane (transfer timing, ReserveTransfer) is NOT part of the
// Medium: load-fraction shipping is modeled in virtual time by the
// simulator regardless of what carries the control messages.
type Medium interface {
	// Attach registers an endpoint identity on the medium.
	Attach(id string) error
	// Endpoints returns the attached identities, sorted.
	Endpoints() []string
	// NextNonce allocates a fresh logical-message nonce.
	NextNonce() uint64
	// BroadcastTagged delivers env to every attached endpoint except
	// from, under the given logical nonce (0 allocates one). It returns
	// the nonce in force.
	BroadcastTagged(from, kind string, env sig.Envelope, size int, nonce uint64) (uint64, error)
	// SendTagged delivers env to a single endpoint under the given
	// logical nonce (0 allocates one). It returns the nonce in force.
	SendTagged(from, to, kind string, env sig.Envelope, size int, nonce uint64) (uint64, error)
	// Drain removes and returns the endpoint's queued deliveries in
	// arrival order.
	Drain(id string) ([]Message, error)
	// Stats returns a snapshot of the traffic and fault counters.
	Stats() Stats
	// SetTracer installs an observability tracer on the delivery path.
	SetTracer(t obs.Tracer)
}

// The simulated bus is the reference Medium.
var _ Medium = (*Bus)(nil)
