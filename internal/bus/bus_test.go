package bus

import (
	"math/rand"
	"testing"
	"testing/quick"

	"dlsbl/internal/sig"
)

func testEnv(t *testing.T, id string, seed int64, v any) sig.Envelope {
	t.Helper()
	k, err := sig.GenerateKeyPair(id, sig.DeterministicSource(seed))
	if err != nil {
		t.Fatal(err)
	}
	env, err := sig.Seal(k, "test", v)
	if err != nil {
		t.Fatal(err)
	}
	return env
}

func newBus(t *testing.T, z float64, ids ...string) *Bus {
	t.Helper()
	b, err := New(z)
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range ids {
		if err := b.Attach(id); err != nil {
			t.Fatal(err)
		}
	}
	return b
}

func TestNewRejectsInvalidZ(t *testing.T) {
	if _, err := New(-1); err == nil {
		t.Error("negative z accepted")
	}
}

func TestAttach(t *testing.T) {
	b := newBus(t, 0.5, "P1")
	if err := b.Attach("P1"); err == nil {
		t.Error("duplicate attach accepted")
	}
	if err := b.Attach(""); err == nil {
		t.Error("empty id accepted")
	}
	if err := b.Attach(BroadcastAddr); err == nil {
		t.Error("broadcast address accepted as endpoint")
	}
	b2 := newBus(t, 0.5, "P2", "P1", "referee")
	ids := b2.Endpoints()
	want := []string{"P1", "P2", "referee"}
	for i := range want {
		if ids[i] != want[i] {
			t.Fatalf("endpoints = %v, want %v", ids, want)
		}
	}
}

func TestBroadcastReachesAllOthers(t *testing.T) {
	b := newBus(t, 0.1, "P1", "P2", "P3")
	env := testEnv(t, "P1", 1, map[string]float64{"bid": 2})
	if err := b.Broadcast("P1", "bid", env, 1); err != nil {
		t.Fatal(err)
	}
	own, err := b.Drain("P1")
	if err != nil {
		t.Fatal(err)
	}
	if len(own) != 0 {
		t.Errorf("sender received its own broadcast: %v", own)
	}
	for _, id := range []string{"P2", "P3"} {
		msgs, err := b.Drain(id)
		if err != nil {
			t.Fatal(err)
		}
		if len(msgs) != 1 {
			t.Fatalf("%s received %d messages, want 1", id, len(msgs))
		}
		m := msgs[0]
		if m.From != "P1" || m.To != BroadcastAddr || m.Kind != "bid" || m.Size != 1 {
			t.Errorf("%s got %+v", id, m)
		}
		if !m.Env.Equal(env) {
			t.Errorf("%s received a non-identical broadcast copy", id)
		}
	}
}

func TestSendUnicast(t *testing.T) {
	b := newBus(t, 0.1, "P1", "referee")
	env := testEnv(t, "P1", 2, []float64{1, 2, 3})
	if err := b.Send("P1", "referee", "payments", env, 3); err != nil {
		t.Fatal(err)
	}
	msgs, err := b.Drain("referee")
	if err != nil {
		t.Fatal(err)
	}
	if len(msgs) != 1 || msgs[0].To != "referee" || msgs[0].Size != 3 {
		t.Errorf("referee inbox = %+v", msgs)
	}
	if err := b.Send("ghost", "referee", "x", env, 1); err == nil {
		t.Error("unknown sender accepted")
	}
	if err := b.Send("P1", "ghost", "x", env, 1); err == nil {
		t.Error("unknown receiver accepted")
	}
	if err := b.Send("P1", "referee", "x", env, -1); err == nil {
		t.Error("negative size accepted")
	}
	if err := b.Broadcast("ghost", "x", env, 1); err == nil {
		t.Error("unknown broadcaster accepted")
	}
	if err := b.Broadcast("P1", "x", env, -2); err == nil {
		t.Error("negative broadcast size accepted")
	}
}

func TestDrainEmptiesInbox(t *testing.T) {
	b := newBus(t, 0, "P1", "P2")
	env := testEnv(t, "P1", 3, 1)
	if err := b.Broadcast("P1", "bid", env, 1); err != nil {
		t.Fatal(err)
	}
	first, err := b.Drain("P2")
	if err != nil {
		t.Fatal(err)
	}
	if len(first) != 1 {
		t.Fatalf("first drain = %d messages", len(first))
	}
	second, err := b.Drain("P2")
	if err != nil {
		t.Fatal(err)
	}
	if len(second) != 0 {
		t.Error("drain did not empty the inbox")
	}
	if _, err := b.Drain("ghost"); err == nil {
		t.Error("unknown endpoint drained")
	}
}

func TestStatsAccounting(t *testing.T) {
	b := newBus(t, 0, "P1", "P2", "P3", "referee")
	env := testEnv(t, "P1", 4, 1)
	if err := b.Broadcast("P1", "bid", env, 1); err != nil { // 3 deliveries
		t.Fatal(err)
	}
	if err := b.Send("P2", "referee", "payments", env, 4); err != nil {
		t.Fatal(err)
	}
	s := b.Stats()
	if s.Messages != 2 || s.Units != 5 || s.Broadcasts != 1 || s.Unicasts != 1 {
		t.Errorf("stats = %+v", s)
	}
	if s.Deliveries != 4 || s.DeliveredUnits != 7 {
		t.Errorf("delivery stats = %+v", s)
	}
}

func TestReserveTransferSerializes(t *testing.T) {
	b := newBus(t, 2, "P1")
	s1, e1, err := b.ReserveTransfer(0, 0.5) // 1 time unit
	if err != nil {
		t.Fatal(err)
	}
	if s1 != 0 || e1 != 1 {
		t.Errorf("first transfer [%v,%v), want [0,1)", s1, e1)
	}
	s2, e2, err := b.ReserveTransfer(0, 0.25) // 0.5 units, must queue
	if err != nil {
		t.Fatal(err)
	}
	if s2 != 1 || e2 != 1.5 {
		t.Errorf("second transfer [%v,%v), want [1,1.5)", s2, e2)
	}
	if b.DataPlaneFreeAt() != 1.5 {
		t.Errorf("data plane free at %v, want 1.5", b.DataPlaneFreeAt())
	}
	if _, _, err := b.ReserveTransfer(0, -0.1); err == nil {
		t.Error("negative fraction accepted")
	}
	if b.Z() != 2 {
		t.Errorf("Z = %v, want 2", b.Z())
	}
}

// Property: after any sequence of broadcasts, Deliveries =
// Messages·(endpoints−1) and every inbox except senders' holds all
// messages.
func TestQuickBroadcastFanout(t *testing.T) {
	f := func(seed int64, nEndpoints, nMsgs uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + int(nEndpoints)%8
		k := int(nMsgs) % 20
		b, err := New(0.1)
		if err != nil {
			return false
		}
		ids := make([]string, n)
		for i := range ids {
			ids[i] = string(rune('A' + i))
			if err := b.Attach(ids[i]); err != nil {
				return false
			}
		}
		for j := 0; j < k; j++ {
			from := ids[rng.Intn(n)]
			if err := b.Broadcast(from, "m", sig.Envelope{Sender: from}, 1); err != nil {
				return false
			}
		}
		s := b.Stats()
		return s.Messages == k && s.Deliveries == k*(n-1) && s.Units == k
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
