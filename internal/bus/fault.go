package bus

import (
	"fmt"
	"math"
	"math/rand"
)

// FaultPlan describes a deterministic, seeded adversarial link layer for
// the simulated bus. The paper specifies DLS-BL-NCP over a perfectly
// reliable atomic-broadcast medium; a FaultPlan removes that assumption so
// the retry/eviction machinery in internal/protocol can be exercised and
// measured. Every fault decision is drawn from a private PRNG seeded with
// Seed, and deliveries are processed in a fixed (sorted-receiver) order,
// so two buses built from equal plans misbehave identically.
//
// All probabilities are per control-plane delivery (a broadcast to k
// receivers makes k independent delivery decisions), must lie in [0, 1],
// and compose in a fixed pipeline per delivery:
//
//	unresponsive? → drop? → corrupt? → duplicate? → (per copy) delay? → reorder?
//
// A nil *FaultPlan is the reliable bus: the delivery path then takes a
// single branch and performs no PRNG work (see BenchmarkBroadcastReliable
// for the zero-overhead guard).
type FaultPlan struct {
	// Seed drives the fault PRNG. Two plans with equal fields produce
	// identical fault sequences.
	Seed int64 `json:"seed"`

	// Drop is the probability a delivery is lost forever.
	Drop float64 `json:"drop,omitempty"`
	// Duplicate is the probability a delivery arrives twice. The copies
	// carry the same logical nonce, so idempotent receivers (nonce dedup
	// in internal/protocol) collapse them.
	Duplicate float64 `json:"duplicate,omitempty"`
	// Delay is the probability a delivery is deferred to the receiver's
	// next-but-one Drain — the discrete-time analogue of a message that
	// misses its per-attempt deadline and straggles in late.
	Delay float64 `json:"delay,omitempty"`
	// Corrupt is the probability a delivery suffers a signature-breaking
	// bit flip. The payload bytes are preserved; the Ed25519 signature is
	// flipped, so Envelope.Verify fails and honest receivers discard the
	// copy exactly as the paper prescribes for unverifiable messages.
	Corrupt float64 `json:"corrupt,omitempty"`
	// Reorder is the probability a delivery jumps the receiver's queue,
	// landing at a random earlier position instead of at the tail.
	Reorder float64 `json:"reorder,omitempty"`

	// JitterMax adds latency jitter to the DATA plane: each reserved
	// transfer is stretched by an extra uniform [0, JitterMax) of virtual
	// time, modeling per-link contention on the shared medium.
	JitterMax float64 `json:"jitter_max,omitempty"`

	// Unresponsive lists endpoint identities whose control-plane traffic
	// is blackholed in both directions — the crash-faulty processors.
	// Their deliveries count as drops.
	Unresponsive []string `json:"unresponsive,omitempty"`

	// Pairs lists targeted per-link fault rules, the strategic-adversary
	// upgrade over the i.i.d. probabilities above: each rule applies only
	// to deliveries from its From endpoint to its To endpoint, so an
	// attacker can degrade exactly one rival's links while every other
	// pair stays clean. Pair rules compose with the i.i.d. fields (the
	// per-pair draw happens first; an undropped delivery still faces the
	// global Drop).
	Pairs []PairFault `json:"pairs,omitempty"`

	// Crashes lists processors that die mid-run: each spec fell-stops its
	// processor at the start of the Processing Load phase, after the load
	// is allocated but before any results are metered. The protocol layer
	// reads these specs (the bus only transports them); see
	// protocol.Config.Faults and the checkpointed re-allocation path.
	Crashes []Crash `json:"crashes,omitempty"`
}

// PairFault is a targeted fault rule for one directed link. Zero-valued
// probabilities leave that failure mode to the plan's i.i.d. fields.
type PairFault struct {
	// From and To name the endpoints of the directed link the rule
	// applies to ("P3" → "P1").
	From string `json:"from"`
	To   string `json:"to"`
	// Drop is the probability a delivery on this link is lost forever;
	// 1.0 severs the link, the building block of a framing attack.
	Drop float64 `json:"drop,omitempty"`
	// Corrupt is the probability a delivery on this link suffers a
	// signature-breaking bit flip.
	Corrupt float64 `json:"corrupt,omitempty"`
	// Jitter stretches DATA-plane transfers terminating at To by an
	// extra uniform [0, Jitter) of virtual time, on top of the plan's
	// global JitterMax (see Bus.ReserveTransferTo).
	Jitter float64 `json:"jitter,omitempty"`
}

// Crash fail-stops one processor during the computation phase.
type Crash struct {
	// Proc is the processor that dies ("P3").
	Proc string `json:"proc"`
	// Installment restricts the crash to one pipelined sub-round
	// (1-based); 0 fires in whichever round reaches the Processing Load
	// phase first.
	Installment int `json:"installment,omitempty"`
}

// Validate checks the plan's parameters.
func (p *FaultPlan) Validate() error {
	if p == nil {
		return nil
	}
	for _, f := range []struct {
		name string
		v    float64
	}{
		{"Drop", p.Drop}, {"Duplicate", p.Duplicate}, {"Delay", p.Delay},
		{"Corrupt", p.Corrupt}, {"Reorder", p.Reorder},
	} {
		if f.v < 0 || f.v > 1 || math.IsNaN(f.v) {
			return fmt.Errorf("bus: fault plan %s=%v outside [0,1]", f.name, f.v)
		}
	}
	if p.JitterMax < 0 || math.IsNaN(p.JitterMax) || math.IsInf(p.JitterMax, 0) {
		return fmt.Errorf("bus: fault plan JitterMax=%v invalid", p.JitterMax)
	}
	for i, pr := range p.Pairs {
		if pr.From == "" || pr.To == "" {
			return fmt.Errorf("bus: fault plan Pairs[%d] names an empty endpoint", i)
		}
		if pr.From == pr.To {
			return fmt.Errorf("bus: fault plan Pairs[%d] targets the self-link %s→%s", i, pr.From, pr.To)
		}
		for _, f := range []struct {
			name string
			v    float64
		}{{"Drop", pr.Drop}, {"Corrupt", pr.Corrupt}} {
			if f.v < 0 || f.v > 1 || math.IsNaN(f.v) {
				return fmt.Errorf("bus: fault plan Pairs[%d].%s=%v outside [0,1]", i, f.name, f.v)
			}
		}
		if pr.Jitter < 0 || math.IsNaN(pr.Jitter) || math.IsInf(pr.Jitter, 0) {
			return fmt.Errorf("bus: fault plan Pairs[%d].Jitter=%v invalid", i, pr.Jitter)
		}
	}
	for i, c := range p.Crashes {
		if c.Proc == "" {
			return fmt.Errorf("bus: fault plan Crashes[%d] names no processor", i)
		}
		if c.Installment < 0 {
			return fmt.Errorf("bus: fault plan Crashes[%d].Installment=%d negative", i, c.Installment)
		}
	}
	return nil
}

// active reports whether the plan can affect the control plane at all.
// Crashes are excluded: they are protocol-level fail-stops, not link
// faults, so a crashes-only plan keeps the bus on its reliable fast path.
func (p *FaultPlan) active() bool {
	return p != nil && (p.Drop > 0 || p.Duplicate > 0 || p.Delay > 0 ||
		p.Corrupt > 0 || p.Reorder > 0 || len(p.Unresponsive) > 0 ||
		len(p.Pairs) > 0)
}

// DataPlaneActive reports whether the plan stretches data-plane
// transfers at all (global jitter or any per-pair jitter).
func (p *FaultPlan) DataPlaneActive() bool {
	if p == nil {
		return false
	}
	if p.JitterMax > 0 {
		return true
	}
	for _, pr := range p.Pairs {
		if pr.Jitter > 0 {
			return true
		}
	}
	return false
}

// CrashAt returns the processors the plan fail-stops at the Processing
// Load phase of the given 1-based installment (inst 1 also matches
// whole-load runs; Installment 0 specs match every installment).
func (p *FaultPlan) CrashAt(inst int) []string {
	if p == nil || len(p.Crashes) == 0 {
		return nil
	}
	var procs []string
	for _, c := range p.Crashes {
		if c.Installment == 0 || c.Installment == inst {
			procs = append(procs, c.Proc)
		}
	}
	return procs
}

// pairKey identifies one directed link for the targeted-rule lookup.
type pairKey struct{ from, to string }

// faultState is the per-bus instantiation of a plan: the seeded PRNG,
// the blackhole set and the per-pair rule index. It is guarded by the
// bus mutex.
type faultState struct {
	plan        *FaultPlan
	rng         *rand.Rand
	unreachable map[string]bool
	pairs       map[pairKey]PairFault
}

func newFaultState(p *FaultPlan) *faultState {
	if p == nil {
		return nil
	}
	fs := &faultState{
		plan:        p,
		rng:         rand.New(rand.NewSource(p.Seed)),
		unreachable: make(map[string]bool, len(p.Unresponsive)),
	}
	for _, id := range p.Unresponsive {
		fs.unreachable[id] = true
	}
	if len(p.Pairs) > 0 {
		fs.pairs = make(map[pairKey]PairFault, len(p.Pairs))
		for _, pr := range p.Pairs {
			fs.pairs[pairKey{pr.From, pr.To}] = pr
		}
	}
	return fs
}

// pairRule returns the targeted rule for the (from, to) link, if any.
func (fs *faultState) pairRule(from, to string) (PairFault, bool) {
	if fs == nil || fs.pairs == nil {
		return PairFault{}, false
	}
	pr, ok := fs.pairs[pairKey{from, to}]
	return pr, ok
}

// corruptEnvelope returns a copy of the message whose signature (or, for
// an unsigned message, payload) has one bit flipped. The original's
// backing arrays are never touched — other receivers share them.
func corruptEnvelope(msg Message) Message {
	out := msg
	if len(msg.Env.Signature) > 0 {
		sig := append([]byte(nil), msg.Env.Signature...)
		sig[0] ^= 0x01
		out.Env.Signature = sig
	} else if len(msg.Env.Payload) > 0 {
		pl := append([]byte(nil), msg.Env.Payload...)
		pl[0] ^= 0x01
		out.Env.Payload = pl
	}
	return out
}
