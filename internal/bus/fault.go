package bus

import (
	"fmt"
	"math"
	"math/rand"
)

// FaultPlan describes a deterministic, seeded adversarial link layer for
// the simulated bus. The paper specifies DLS-BL-NCP over a perfectly
// reliable atomic-broadcast medium; a FaultPlan removes that assumption so
// the retry/eviction machinery in internal/protocol can be exercised and
// measured. Every fault decision is drawn from a private PRNG seeded with
// Seed, and deliveries are processed in a fixed (sorted-receiver) order,
// so two buses built from equal plans misbehave identically.
//
// All probabilities are per control-plane delivery (a broadcast to k
// receivers makes k independent delivery decisions), must lie in [0, 1],
// and compose in a fixed pipeline per delivery:
//
//	unresponsive? → drop? → corrupt? → duplicate? → (per copy) delay? → reorder?
//
// A nil *FaultPlan is the reliable bus: the delivery path then takes a
// single branch and performs no PRNG work (see BenchmarkBroadcastReliable
// for the zero-overhead guard).
type FaultPlan struct {
	// Seed drives the fault PRNG. Two plans with equal fields produce
	// identical fault sequences.
	Seed int64 `json:"seed"`

	// Drop is the probability a delivery is lost forever.
	Drop float64 `json:"drop,omitempty"`
	// Duplicate is the probability a delivery arrives twice. The copies
	// carry the same logical nonce, so idempotent receivers (nonce dedup
	// in internal/protocol) collapse them.
	Duplicate float64 `json:"duplicate,omitempty"`
	// Delay is the probability a delivery is deferred to the receiver's
	// next-but-one Drain — the discrete-time analogue of a message that
	// misses its per-attempt deadline and straggles in late.
	Delay float64 `json:"delay,omitempty"`
	// Corrupt is the probability a delivery suffers a signature-breaking
	// bit flip. The payload bytes are preserved; the Ed25519 signature is
	// flipped, so Envelope.Verify fails and honest receivers discard the
	// copy exactly as the paper prescribes for unverifiable messages.
	Corrupt float64 `json:"corrupt,omitempty"`
	// Reorder is the probability a delivery jumps the receiver's queue,
	// landing at a random earlier position instead of at the tail.
	Reorder float64 `json:"reorder,omitempty"`

	// JitterMax adds latency jitter to the DATA plane: each reserved
	// transfer is stretched by an extra uniform [0, JitterMax) of virtual
	// time, modeling per-link contention on the shared medium.
	JitterMax float64 `json:"jitter_max,omitempty"`

	// Unresponsive lists endpoint identities whose control-plane traffic
	// is blackholed in both directions — the crash-faulty processors.
	// Their deliveries count as drops.
	Unresponsive []string `json:"unresponsive,omitempty"`
}

// Validate checks the plan's parameters.
func (p *FaultPlan) Validate() error {
	if p == nil {
		return nil
	}
	for _, f := range []struct {
		name string
		v    float64
	}{
		{"Drop", p.Drop}, {"Duplicate", p.Duplicate}, {"Delay", p.Delay},
		{"Corrupt", p.Corrupt}, {"Reorder", p.Reorder},
	} {
		if f.v < 0 || f.v > 1 || math.IsNaN(f.v) {
			return fmt.Errorf("bus: fault plan %s=%v outside [0,1]", f.name, f.v)
		}
	}
	if p.JitterMax < 0 || math.IsNaN(p.JitterMax) || math.IsInf(p.JitterMax, 0) {
		return fmt.Errorf("bus: fault plan JitterMax=%v invalid", p.JitterMax)
	}
	return nil
}

// active reports whether the plan can affect the control plane at all.
func (p *FaultPlan) active() bool {
	return p != nil && (p.Drop > 0 || p.Duplicate > 0 || p.Delay > 0 ||
		p.Corrupt > 0 || p.Reorder > 0 || len(p.Unresponsive) > 0)
}

// faultState is the per-bus instantiation of a plan: the seeded PRNG and
// the blackhole set. It is guarded by the bus mutex.
type faultState struct {
	plan        *FaultPlan
	rng         *rand.Rand
	unreachable map[string]bool
}

func newFaultState(p *FaultPlan) *faultState {
	if p == nil {
		return nil
	}
	fs := &faultState{
		plan:        p,
		rng:         rand.New(rand.NewSource(p.Seed)),
		unreachable: make(map[string]bool, len(p.Unresponsive)),
	}
	for _, id := range p.Unresponsive {
		fs.unreachable[id] = true
	}
	return fs
}

// corruptEnvelope returns a copy of the message whose signature (or, for
// an unsigned message, payload) has one bit flipped. The original's
// backing arrays are never touched — other receivers share them.
func corruptEnvelope(msg Message) Message {
	out := msg
	if len(msg.Env.Signature) > 0 {
		sig := append([]byte(nil), msg.Env.Signature...)
		sig[0] ^= 0x01
		out.Env.Signature = sig
	} else if len(msg.Env.Payload) > 0 {
		pl := append([]byte(nil), msg.Env.Payload...)
		pl[0] ^= 0x01
		out.Env.Payload = pl
	}
	return out
}
