package pipeline

import (
	"math"
	"math/rand"
	"reflect"
	"testing"

	"dlsbl/internal/dlt"
	"dlsbl/internal/protocol"
)

func randomBatch(rng *rand.Rand, m, d int) []Job {
	jobs := make([]Job, d)
	for j := range jobs {
		w := make([]float64, m)
		for i := range w {
			w[i] = 1 + rng.Float64()
		}
		in := dlt.Instance{Network: dlt.NCPFE, Z: 0.1, W: w}
		a, err := dlt.PipelinedAllocation(in)
		if err != nil {
			panic(err)
		}
		jobs[j] = Job{
			Exec:   w,
			Alloc:  a,
			Rounds: 1 + rng.Intn(4),
			Policy: dlt.RoundPolicy(rng.Intn(2)),
		}
	}
	return jobs
}

// TestPackProperties: over random batches, the packed plan keeps the
// one-port bus exclusive, keeps each processor's computations
// non-overlapping and installment-ordered within a job, conserves every
// job's work, and never finishes later than the serial FIFO baseline.
func TestPackProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(93))
	for trial := 0; trial < 60; trial++ {
		m := 2 + rng.Intn(12)
		d := 1 + rng.Intn(6)
		jobs := randomBatch(rng, m, d)
		z := 0.1
		plan, err := Pack(dlt.NCPFE, z, jobs)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}

		// One-port bus: comm spans in emission order never overlap.
		prevEnd := 0.0
		for _, s := range plan.Spans {
			if !s.BusOwner {
				continue
			}
			if s.Start < prevEnd-1e-9 {
				t.Fatalf("trial %d: bus spans overlap at %v < %v", trial, s.Start, prevEnd)
			}
			prevEnd = s.End
			if want := z * s.Frac; math.Abs((s.End-s.Start)-want) > 1e-9 {
				t.Errorf("trial %d: comm span duration %v, want z·frac=%v", trial, s.End-s.Start, want)
			}
		}

		// Per-processor computations never overlap; per (job, proc) the
		// installment chunks appear in round order.
		procEnd := make([]float64, m)
		lastRound := make(map[[2]int]int)
		work := make([]float64, d)
		for _, s := range plan.Spans {
			if s.Kind != dlt.Comp {
				continue
			}
			if s.Start < procEnd[s.Proc]-1e-9 {
				t.Fatalf("trial %d: P%d computations overlap", trial, s.Proc+1)
			}
			procEnd[s.Proc] = s.End
			key := [2]int{s.Job, s.Proc}
			if r, ok := lastRound[key]; ok && s.Round <= r {
				t.Fatalf("trial %d: job %d P%d installments out of order", trial, s.Job, s.Proc+1)
			}
			lastRound[key] = s.Round
			work[s.Job] += s.Frac
			if s.End > plan.Finish[s.Job]+1e-12 {
				t.Fatalf("trial %d: span ends after its job's finish", trial)
			}
		}
		for j, wk := range work {
			if math.Abs(wk-plan.Jobs[j].Size) > 1e-9 {
				t.Errorf("trial %d: job %d computes %v of its load", trial, j, wk)
			}
		}

		// Packing can only help against running the same per-job
		// multi-round schedules back to back. (The FIFOTotal baseline is
		// a different animal — the FIFO runner's single-round optimum —
		// and a shallow batch under the throughput-balanced allocation
		// may legitimately lose to it; the deep-batch win is
		// TestPackOverlapsJobs's job.)
		serial := 0.0
		for j, job := range plan.Jobs {
			in := dlt.Instance{Network: dlt.NCPFE, Z: z, W: job.Exec}
			ms, err := dlt.MultiRoundMakespanWithSpeeds(in, job.Alloc, job.Rounds, job.Policy, job.Exec)
			if err != nil {
				t.Fatalf("trial %d job %d: %v", trial, j, err)
			}
			serial += ms * job.Size
		}
		if plan.Makespan > serial*(1+1e-9) {
			t.Errorf("trial %d: packed makespan %v exceeds serial same-schedule total %v", trial, plan.Makespan, serial)
		}
		if s := plan.Speedup(); !(s > 0) || math.IsInf(s, 0) {
			t.Errorf("trial %d: speedup %v not positive finite", trial, s)
		}

		// Determinism: packing is pure placement.
		again, err := Pack(dlt.NCPFE, z, randomCopy(jobs))
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(plan, again) {
			t.Fatalf("trial %d: Pack is not deterministic", trial)
		}
	}
}

func randomCopy(jobs []Job) []Job {
	cp := make([]Job, len(jobs))
	for i, j := range jobs {
		j.Exec = append([]float64(nil), j.Exec...)
		j.Alloc = append(dlt.Allocation(nil), j.Alloc...)
		cp[i] = j
	}
	return cp
}

// TestPackOverlapsJobs: with several queued loads and installments, the
// packed schedule beats FIFO by a real margin — distinct jobs' compute
// overlaps with bus transfers that FIFO serializes.
func TestPackOverlapsJobs(t *testing.T) {
	rng := rand.New(rand.NewSource(94))
	m, d := 16, 4
	jobs := randomBatch(rng, m, d)
	for j := range jobs {
		jobs[j].Rounds = 4
		jobs[j].Policy = dlt.GeometricRounds
	}
	plan, err := Pack(dlt.NCPFE, 0.1, jobs)
	if err != nil {
		t.Fatal(err)
	}
	if s := plan.Speedup(); s < 1.3 {
		t.Errorf("m=%d D=%d packed speedup %.3f, want >= 1.3", m, d, s)
	}
}

// TestPackValidation: malformed batches are rejected with clear errors.
func TestPackValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(95))
	jobs := randomBatch(rng, 4, 2)
	if _, err := Pack(dlt.NCPFE, 0.1, nil); err == nil {
		t.Error("empty batch accepted")
	}
	if _, err := Pack(dlt.NCPNFE, 0.1, jobs); err == nil {
		t.Error("NCP-NFE batch accepted")
	}
	bad := randomCopy(jobs)
	bad[1].Exec = bad[1].Exec[:2]
	if _, err := Pack(dlt.NCPFE, 0.1, bad); err == nil {
		t.Error("ragged batch accepted")
	}
	bad = randomCopy(jobs)
	bad[0].Rounds = 0
	if _, err := Pack(dlt.NCPFE, 0.1, bad); err == nil {
		t.Error("zero rounds accepted")
	}
}

// TestJobTimelineSeparability: extracting one job's timeline from the
// plan keeps exactly that job's spans, so per-job schedules (like per-job
// transcripts) stay independently inspectable.
func TestJobTimelineSeparability(t *testing.T) {
	rng := rand.New(rand.NewSource(96))
	jobs := randomBatch(rng, 6, 3)
	plan, err := Pack(dlt.NCPFE, 0.1, jobs)
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for j := range plan.Jobs {
		tl, err := plan.JobTimeline(j)
		if err != nil {
			t.Fatal(err)
		}
		total += len(tl.Spans)
		if math.Abs(tl.Makespan-plan.Finish[j]) > 1e-12 {
			t.Errorf("job %d timeline makespan %v, plan finish %v", j, tl.Makespan, plan.Finish[j])
		}
	}
	if total != len(plan.Spans) {
		t.Errorf("job timelines hold %d spans, plan has %d", total, len(plan.Spans))
	}
	if _, err := plan.JobTimeline(99); err == nil {
		t.Error("out-of-range job accepted")
	}
}

// TestJobFromOutcome: a completed protocol outcome converts into a packer
// job carrying the realized rates and allocation.
func TestJobFromOutcome(t *testing.T) {
	out, err := protocol.Run(protocol.Config{Network: dlt.NCPFE, Z: 0.1, TrueW: []float64{3, 2, 4}, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	job, err := JobFromOutcome("j1", out, 2, dlt.EqualRounds)
	if err != nil {
		t.Fatal(err)
	}
	if len(job.Exec) != 3 || len(job.Alloc) != 3 {
		t.Fatalf("job has %d/%d entries", len(job.Exec), len(job.Alloc))
	}
	sum := 0.0
	for _, a := range job.Alloc {
		sum += a
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("allocation sums to %v", sum)
	}
	if _, err := JobFromOutcome("j2", &protocol.Outcome{}, 1, dlt.EqualRounds); err == nil {
		t.Error("incomplete outcome accepted")
	}
}
