package pipeline

import (
	"testing"

	"dlsbl/internal/adversarytest"
	"dlsbl/internal/dlt"
	"dlsbl/internal/obs"
	"dlsbl/internal/protocol"
	"dlsbl/internal/referee"
)

// TestRunLoadCrashMidInstallment is the tier-3 checkpointed-recovery
// case across installments: P3 fail-stops at the start of installment 2
// of 3. The load still completes — the survivors carry installments 2
// and 3 — and P3 keeps exactly its installment-1 earnings: completed
// installments stay credited (their sub-round payments already
// telescoped), later ones exclude the dead processor entirely.
func TestRunLoadCrashMidInstallment(t *testing.T) {
	w := []float64{3, 2, 4, 5}
	s := newSession(t, w...)
	job := protocol.JobConfig{Seed: 7, NBlocks: 64}
	// Warm the cache so the load runs on the cached-bid fast path, then
	// crash P3 in installment 2.
	if _, err := s.Run(job); err != nil {
		t.Fatal(err)
	}
	job.Faults = adversarytest.CrashPlan(5, 2, "P3")
	out, err := RunLoad(s, Load{Job: job, Rounds: 3, Policy: dlt.EqualRounds})
	if err != nil {
		t.Fatal(err)
	}
	if !out.Completed {
		t.Fatalf("load terminated in %s", out.TerminatedIn)
	}
	if len(out.Installments) != 3 {
		t.Fatalf("%d installments, want 3", len(out.Installments))
	}
	first, second, third := out.Installments[0], out.Installments[1], out.Installments[2]

	if len(first.Evictions) != 0 || first.Payments[2] <= 0 {
		t.Fatalf("installment 1 must pay P3 normally: evictions=%+v payment=%v",
			first.Evictions, first.Payments[2])
	}
	if len(second.Evictions) != 1 || second.Evictions[0].Proc != "P3" ||
		second.Evictions[0].Phase != obs.PhaseProcessing {
		t.Fatalf("installment 2 evictions = %+v, want P3 in processing", second.Evictions)
	}
	if second.Payments[2] != 0 || third.Payments[2] != 0 {
		t.Errorf("crashed P3 paid after the crash: inst2=%v inst3=%v",
			second.Payments[2], third.Payments[2])
	}
	if third.Participated[2] {
		t.Error("P3 still participates in installment 3 after crashing")
	}
	if len(third.Evictions) != 0 {
		t.Errorf("installment 3 re-evicts: %+v", third.Evictions)
	}

	// Aggregate: P3's total is exactly its installment-1 credit; the
	// survivors earned in every installment and the load's full fraction
	// was served.
	if !out.Evicted[2] {
		t.Error("aggregate does not mark P3 evicted")
	}
	if out.Payments[2] != first.Payments[2] {
		t.Errorf("P3 total %v, want its installment-1 credit %v",
			out.Payments[2], first.Payments[2])
	}
	for _, i := range []int{0, 1, 3} {
		if out.Payments[i] <= first.Payments[i] {
			t.Errorf("survivor P%d earned %v total vs %v in installment 1 alone",
				i+1, out.Payments[i], first.Payments[i])
		}
	}
	if out.LoadFraction != 1 {
		t.Errorf("load fraction %v, want 1", out.LoadFraction)
	}
	// Each sub-round's transcript verifies independently, crash included.
	for k, inst := range out.Installments {
		if err := referee.VerifyEntries(inst.Transcript); err != nil {
			t.Errorf("installment %d transcript: %v", k+1, err)
		}
	}
}
