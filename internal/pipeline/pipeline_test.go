package pipeline

import (
	"math"
	"reflect"
	"testing"

	"dlsbl/internal/agent"
	"dlsbl/internal/dlt"
	"dlsbl/internal/obs"
	"dlsbl/internal/protocol"
	"dlsbl/internal/referee"
)

func newSession(t *testing.T, w ...float64) *protocol.BidSession {
	t.Helper()
	s, err := protocol.NewBidSession(protocol.Config{Network: dlt.NCPFE, Z: 0.2, TrueW: w})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func approx(a, b, tol float64) bool {
	scale := math.Max(math.Abs(a), math.Abs(b))
	if scale < 1 {
		scale = 1
	}
	return math.Abs(a-b) <= tol*scale
}

// TestRunLoadDegenerate: R=1 routes through BidSession.Run verbatim, so a
// one-installment load is bit-identical to the plain multiload path.
func TestRunLoadDegenerate(t *testing.T) {
	w := []float64{3, 2, 4, 5}
	job := protocol.JobConfig{Seed: 7, NBlocks: 64}
	plain := newSession(t, w...)
	piped := newSession(t, w...)
	for k := 0; k < 3; k++ {
		want, err := plain.Run(job)
		if err != nil {
			t.Fatal(err)
		}
		got, err := RunLoad(piped, Load{Job: job, Rounds: 1})
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("round %d: R=1 outcome diverges from plain Run", k+1)
		}
	}
}

// TestRunLoadTelescopesPayments: installment sub-rounds price the load
// under one whole-load rule — every installment charges the same unit
// price, scaled by its load fraction, so the per-installment payments
// telescope to a single whole-load payment vector and nobody can shave
// their bill by the round it lands in. The sub-round IDs are well-formed
// and distinct, and every installment's transcript verifies
// independently. (The totals deliberately differ from the single-round
// run: installment rounds allocate by dlt.PipelinedAllocation, not the
// single-round optimum — R=1 bit-parity is TestRunLoadDegenerate's job.)
func TestRunLoadTelescopesPayments(t *testing.T) {
	w := []float64{3, 2, 4, 5, 2.5}
	job := protocol.JobConfig{Seed: 11, NBlocks: 64}
	for _, policy := range []dlt.RoundPolicy{dlt.EqualRounds, dlt.GeometricRounds} {
		for _, rounds := range []int{2, 3, 4, 8} {
			s := newSession(t, w...)
			// Warm the cache first so the pipelined load runs on the
			// cached-bid fast path, as it would in a pool.
			if _, err := s.Run(job); err != nil {
				t.Fatal(err)
			}
			agg, err := RunLoad(s, Load{Job: job, Rounds: rounds, Policy: policy})
			if err != nil {
				t.Fatalf("%v R=%d: %v", policy, rounds, err)
			}
			if !agg.Completed {
				t.Fatalf("%v R=%d: load did not complete", policy, rounds)
			}
			if len(agg.Installments) != rounds {
				t.Fatalf("%v R=%d: %d installment outcomes", policy, rounds, len(agg.Installments))
			}
			if !approx(agg.LoadFraction, 1, 1e-12) {
				t.Errorf("%v R=%d: load fractions sum to %v", policy, rounds, agg.LoadFraction)
			}
			fr, _ := dlt.RoundFractions(rounds, policy)
			for k, sub := range agg.Installments {
				if !approx(sub.UserCost, fr[k]*agg.UserCost, 1e-9) {
					t.Errorf("%v R=%d: installment %d user cost %v, want fraction %v of total %v", policy, rounds, k+1, sub.UserCost, fr[k], agg.UserCost)
				}
				for i := range w {
					if !approx(sub.Payments[i], fr[k]*agg.Payments[i], 1e-9) {
						t.Errorf("%v R=%d: installment %d pays P%d %v, want fraction %v of total %v", policy, rounds, k+1, i+1, sub.Payments[i], fr[k], agg.Payments[i])
					}
					if !approx(sub.Utilities[i], fr[k]*agg.Utilities[i], 1e-9) {
						t.Errorf("%v R=%d: installment %d gives P%d utility %v, want fraction of total %v", policy, rounds, k+1, i+1, sub.Utilities[i], agg.Utilities[i])
					}
					if !approx(sub.WorkCost[i], fr[k]*agg.WorkCost[i], 1e-9) {
						t.Errorf("%v R=%d: installment %d costs P%d %v, want fraction of total %v", policy, rounds, k+1, i+1, sub.WorkCost[i], agg.WorkCost[i])
					}
				}
			}
			base, err := protocol.ParseRoundRef(agg.RoundID)
			if err != nil || base.Installment != 0 {
				t.Fatalf("%v R=%d: aggregate round ID %q: %v", policy, rounds, agg.RoundID, err)
			}
			if agg.Transcript != nil {
				t.Errorf("%v R=%d: aggregate carries a transcript; sub-rounds own theirs", policy, rounds)
			}
			fracs, _ := dlt.RoundFractions(rounds, policy)
			for k, sub := range agg.Installments {
				rr, err := protocol.ParseRoundRef(sub.RoundID)
				if err != nil {
					t.Fatalf("%v R=%d: sub-round ID %q: %v", policy, rounds, sub.RoundID, err)
				}
				if rr.Salt != base.Salt || rr.Round != base.Round || rr.Installment != k+1 {
					t.Errorf("%v R=%d: installment %d carries ID %q under base %q", policy, rounds, k+1, sub.RoundID, agg.RoundID)
				}
				if sub.Installment != k+1 || !approx(sub.LoadFraction, fracs[k], 1e-12) {
					t.Errorf("%v R=%d: installment %d marked %d/frac %v", policy, rounds, k+1, sub.Installment, sub.LoadFraction)
				}
				if !sub.BidReused {
					t.Errorf("%v R=%d: installment %d re-bid although the profile never changed", policy, rounds, k+1)
				}
				if err := referee.VerifyEntries(sub.Transcript); err != nil {
					t.Errorf("%v R=%d: installment %d transcript: %v", policy, rounds, k+1, err)
				}
				found := false
				for _, e := range sub.Transcript {
					if e.Action == "installment" {
						found = true
						if e.Round != sub.RoundID {
							t.Errorf("installment entry bound to %q, want %q", e.Round, sub.RoundID)
						}
					}
				}
				if !found {
					t.Errorf("%v R=%d: installment %d transcript has no installment entry", policy, rounds, k+1)
				}
			}
			// The aggregated timeline is the pipelined multi-round
			// schedule over the realized rates and agreed allocation.
			in := dlt.Instance{Network: dlt.NCPFE, Z: s.Z(), W: agg.Exec}
			ms, err := dlt.MultiRoundMakespanWithSpeeds(in, agg.Alloc, rounds, policy, agg.Exec)
			if err != nil {
				t.Fatalf("%v R=%d: %v", policy, rounds, err)
			}
			if !approx(agg.Makespan, ms, 1e-9) {
				t.Errorf("%v R=%d: aggregate makespan %v, multi-round evaluator %v", policy, rounds, agg.Makespan, ms)
			}
		}
	}
}

// TestRunLoadTerminatesOnce: a deviant convicted in the first installment
// terminates the load there — later installments never run, so the fine
// is assessed exactly once and the full F outweighs the one installment's
// potential gain.
func TestRunLoadTerminatesOnce(t *testing.T) {
	w := []float64{3, 2, 4}
	s := newSession(t, w...)
	job := protocol.JobConfig{
		Seed:      5,
		NBlocks:   60,
		Behaviors: []agent.Behavior{{}, {Name: "equivocator", Equivocate: true, EquivocationFactor: 1.5}},
	}
	agg, err := RunLoad(s, Load{Job: job, Rounds: 4, Policy: dlt.EqualRounds})
	if err != nil {
		t.Fatal(err)
	}
	if agg.Completed {
		t.Fatal("equivocation should terminate the load")
	}
	if len(agg.Installments) != 1 {
		t.Fatalf("load terminated in installment 1 but ran %d installments", len(agg.Installments))
	}
	if agg.Fines[1] != agg.FineMagnitude || agg.Fines[1] == 0 {
		t.Errorf("equivocator fined %v, want the full fine %v exactly once", agg.Fines[1], agg.FineMagnitude)
	}
	if agg.LoadFraction >= 1 {
		t.Errorf("terminated load claims fraction %v", agg.LoadFraction)
	}
}

// TestRunLoadRejectsNFE: the NFE originator cannot overlap, so a
// multi-installment load on NCP-NFE is refused up front.
func TestRunLoadRejectsNFE(t *testing.T) {
	s, err := protocol.NewBidSession(protocol.Config{Network: dlt.NCPNFE, Z: 0.2, TrueW: []float64{3, 2, 4}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := RunLoad(s, Load{Job: protocol.JobConfig{Seed: 1}, Rounds: 2}); err == nil {
		t.Fatal("NCP-NFE multi-installment load accepted")
	}
}

// TestRunLoadSentinelTelescoping attaches an economic-invariant sentinel
// to a pipelined load: the installment invoices must telescope to the
// load-level settlement the aggregate reports, and per-installment
// payment conservation must hold — live, on the event stream, not just
// in the aggregated outcome.
func TestRunLoadSentinelTelescoping(t *testing.T) {
	w := []float64{3, 2, 4, 5}
	for _, rounds := range []int{2, 4} {
		s := newSession(t, w...)
		sentinel := obs.NewSentinel()
		job := protocol.JobConfig{Seed: 11, NBlocks: 64, Tracer: sentinel}
		if _, err := s.Run(job); err != nil {
			t.Fatal(err)
		}
		agg, err := RunLoad(s, Load{Job: job, Rounds: rounds, Policy: dlt.EqualRounds})
		if err != nil {
			t.Fatalf("R=%d: %v", rounds, err)
		}
		if !agg.Completed {
			t.Fatalf("R=%d: load did not complete", rounds)
		}
		if !sentinel.Ok() {
			t.Fatalf("R=%d: sentinel latched on a correct pipelined load: %q",
				rounds, sentinel.Violations())
		}
	}
}
