package pipeline

import (
	"errors"
	"fmt"
	"math"

	"dlsbl/internal/dlt"
	"dlsbl/internal/protocol"
)

// Job is one load admitted to a packed schedule: its realized per-unit
// execution rates, its agreed allocation, and its installment plan.
// Processor indices are pool participant indices, shared across every job
// in the batch.
type Job struct {
	// ID names the job in the plan's spans (informational).
	ID string
	// Size scales the load: per-processor work is Size·Alloc[i]·Exec[i].
	// Zero selects 1 (the unit load every protocol round distributes).
	Size float64
	// Exec are the realized per-unit processing times, participant order.
	Exec []float64
	// Alloc are the agreed load fractions (summing to 1), same order.
	Alloc dlt.Allocation
	// Rounds is the number of installments (>= 1); Policy divides the
	// load across them.
	Rounds int
	Policy dlt.RoundPolicy
}

// JobFromOutcome derives a packer Job from a completed protocol outcome
// (plain or aggregated), reading the realized rates and allocation of the
// surviving participants.
func JobFromOutcome(id string, out *protocol.Outcome, rounds int, policy dlt.RoundPolicy) (Job, error) {
	if out == nil || !out.Completed {
		return Job{}, fmt.Errorf("pipeline: job %s: only completed outcomes can be packed", id)
	}
	_, alloc, err := realized(out)
	if err != nil {
		return Job{}, err
	}
	var w []float64
	for i := range out.Procs {
		if out.Participated[i] && !out.Evicted[i] {
			w = append(w, out.Exec[i])
		}
	}
	return Job{ID: id, Exec: w, Alloc: alloc, Rounds: rounds, Policy: policy}, nil
}

// Span is one activity of a packed plan: job Job's round-r chunk for
// processor Proc. BusOwner marks the one-port communications.
type Span struct {
	// Job indexes the plan's Jobs slice.
	Job int
	// Proc is the pool participant index.
	Proc int
	// Kind is dlt.Comm or dlt.Comp.
	Kind dlt.SpanKind
	// Start and End are virtual times; Frac is the fraction of job Job's
	// load this span carries.
	Start, End, Frac float64
	// Round is the installment index within job Job.
	Round int
	// BusOwner is true for spans occupying the shared one-port bus.
	BusOwner bool
}

// Plan is a packed multi-job schedule over the shared bus.
type Plan struct {
	// Z is the bus rate the plan was built for; Network its class.
	Network dlt.Network
	Z       float64
	// Jobs are the admitted jobs, in admission (bus service) order.
	Jobs []Job
	// Spans is the packed schedule, every span tagged with its job.
	Spans []Span
	// Finish[j] is job j's completion time in the packed schedule.
	Finish []float64
	// Makespan is the batch completion time: max over Finish.
	Makespan float64
	// FIFOTotal is the baseline the packing is measured against: the sum
	// of the jobs' serial single-round makespans — what the pre-pipeline
	// FIFO runner would have taken, one load fully served before the
	// next starts.
	FIFOTotal float64
}

// Pack builds the shared schedule for a batch of jobs on one pool. The
// bus serves installment waves round-robin across jobs in admission
// order — job 0's installment k, job 1's installment k, … — so early
// installments of every job reach the processors quickly and distinct
// jobs' computations overlap on disjoint per-processor time. The packing
// never reorders work within a job (installments stay in order on the
// bus and on every processor) and never moves money: it is pure
// virtual-time placement of the already-agreed transfers.
func Pack(network dlt.Network, z float64, jobs []Job) (Plan, error) {
	if len(jobs) == 0 {
		return Plan{}, errors.New("pipeline: no jobs to pack")
	}
	if !(z >= 0) || math.IsInf(z, 0) {
		return Plan{}, fmt.Errorf("pipeline: invalid z=%v", z)
	}
	if network == dlt.NCPNFE {
		// The NFE originator computes only after all its transmissions
		// finish, so comm/compute overlap — the whole point of packing —
		// is unavailable.
		return Plan{}, errors.New("pipeline: packing requires an overlapping originator (CP or NCP-FE)")
	}
	m := len(jobs[0].Exec)
	plan := Plan{Network: network, Z: z, Jobs: jobs, Finish: make([]float64, len(jobs))}
	maxRounds := 0
	fracs := make([][]float64, len(jobs))
	for j := range jobs {
		job := &plan.Jobs[j]
		if job.Size == 0 {
			job.Size = 1
		}
		if len(job.Exec) != m || len(job.Alloc) != m {
			return Plan{}, fmt.Errorf("pipeline: job %d has %d/%d processor entries, batch has %d", j, len(job.Exec), len(job.Alloc), m)
		}
		if err := dlt.InstallmentFeasible(network, job.Rounds); err != nil {
			return Plan{}, fmt.Errorf("pipeline: job %d: %w", j, err)
		}
		per, err := dlt.RoundFractions(job.Rounds, job.Policy)
		if err != nil {
			return Plan{}, fmt.Errorf("pipeline: job %d: %w", j, err)
		}
		fracs[j] = per
		if job.Rounds > maxRounds {
			maxRounds = job.Rounds
		}
		// FIFO baseline: the job alone under the FIFO runner's own rule —
		// single round at the single-round optimal split — serially, one
		// load fully served before the next starts.
		in := dlt.Instance{Network: network, Z: z, W: job.Exec}
		_, single, err := dlt.OptimalMakespan(in)
		if err != nil {
			return Plan{}, fmt.Errorf("pipeline: job %d: %w", j, err)
		}
		plan.FIFOTotal += single * job.Size
	}

	origIdx := -1
	if network == dlt.NCPFE {
		origIdx = dlt.NCPFE.Originator(m)
	}
	bus := 0.0
	procFree := make([]float64, m)
	for r := 0; r < maxRounds; r++ {
		for j := range plan.Jobs {
			job := &plan.Jobs[j]
			if r >= job.Rounds {
				continue
			}
			for i := 0; i < m; i++ {
				frac := fracs[j][r] * job.Alloc[i] * job.Size
				if frac == 0 {
					continue
				}
				arrival := 0.0
				if i != origIdx {
					end := bus + z*frac
					plan.Spans = append(plan.Spans, Span{Job: j, Proc: i, Kind: dlt.Comm, Start: bus, End: end, Frac: frac, Round: r, BusOwner: true})
					bus = end
					arrival = end
				}
				start := math.Max(arrival, procFree[i])
				end := start + job.Exec[i]*frac
				plan.Spans = append(plan.Spans, Span{Job: j, Proc: i, Kind: dlt.Comp, Start: start, End: end, Frac: frac, Round: r})
				procFree[i] = end
				if end > plan.Finish[j] {
					plan.Finish[j] = end
				}
			}
		}
	}
	for _, f := range plan.Finish {
		if f > plan.Makespan {
			plan.Makespan = f
		}
	}
	return plan, nil
}

// Speedup is the packed batch's throughput gain over the FIFO baseline:
// FIFOTotal / Makespan (1 means no gain; >1 means the packed schedule
// finishes the same work that much faster).
func (p *Plan) Speedup() float64 {
	if p.Makespan <= 0 {
		return 1
	}
	return p.FIFOTotal / p.Makespan
}

// JobTimeline extracts job j's spans as a standalone dlt.Timeline (in the
// packed batch's shared clock), for rendering and per-job makespan
// reporting. The per-job transcripts, verdicts and payments live on the
// job's own protocol outcomes; this is only its realized schedule.
func (p *Plan) JobTimeline(j int) (dlt.Timeline, error) {
	if j < 0 || j >= len(p.Jobs) {
		return dlt.Timeline{}, fmt.Errorf("pipeline: no job %d in plan of %d", j, len(p.Jobs))
	}
	tl := dlt.Timeline{Instance: dlt.Instance{Network: p.Network, Z: p.Z, W: append([]float64(nil), p.Jobs[j].Exec...)}}
	for _, s := range p.Spans {
		if s.Job != j {
			continue
		}
		tl.Spans = append(tl.Spans, dlt.Span{Proc: s.Proc, Kind: s.Kind, Start: s.Start, End: s.End, Frac: s.Frac, Round: s.Round, BusOwner: s.BusOwner})
		if s.End > tl.Makespan {
			tl.Makespan = s.End
		}
	}
	return tl, nil
}
