// Package pipeline is the deterministic scheduling layer between the
// economic mechanism (internal/protocol) and the service runners
// (internal/service). It lifts the simulation-only multi-round solver
// (dlt.MultiRound) into the live protocol in two steps:
//
//   - Installment rounds: RunLoad splits one load into R installments,
//     each served as a signed, session-salted sub-round ("<salt>:rN.iK")
//     from the BidSession's cached-bid fast path, so P_{i+1} receives
//     installment k while P_i computes installment k−1. Per-installment
//     payments scale by the installment's load fraction and telescope to
//     the single-round payment; each sub-round keeps its own hash-chained
//     referee transcript.
//
//   - Cross-job packing: Pack admits up to D jobs into one shared bus
//     schedule, interleaving their installments on the one-port bus while
//     distinct jobs' computations overlap on disjoint processor time. The
//     packed plan keeps every span tagged with its job, so per-job
//     schedules (and the per-job economics, which Pack never touches)
//     stay separable.
//
// Everything here is virtual-time scheduling policy: the money flow is
// decided entirely by the protocol sub-rounds, and the packer only
// arranges when the already-agreed transfers and computations happen.
package pipeline

import (
	"errors"
	"fmt"

	"dlsbl/internal/agent"
	"dlsbl/internal/dlt"
	"dlsbl/internal/obs"
	"dlsbl/internal/protocol"
)

// Load couples one job with its installment plan.
type Load struct {
	// Job is the load-specific protocol configuration (behaviors, seed,
	// faults, tracer), exactly as BidSession.Run takes it.
	Job protocol.JobConfig
	// Rounds is the number of installments R (>= 1). 1 serves the load as
	// a plain whole-load round, byte-identical to BidSession.Run.
	Rounds int
	// Policy divides the load across installments (equal or geometric).
	Policy dlt.RoundPolicy
}

// RunLoad serves one load over the session in ld.Rounds installment
// sub-rounds and returns the aggregated outcome: summed money flows
// (payments, fines, rewards, utilities, work cost, user cost), the
// concatenated verdicts, the pipelined multi-round timeline, and the
// per-installment outcomes under Outcome.Installments (each with its own
// sub-round ID and independently verifiable transcript). A terminating
// verdict in installment k stops the load there — the remaining
// installments are never distributed, so a deviant risks the full fine F
// for at most one installment's gain.
func RunLoad(s *protocol.BidSession, ld Load) (*protocol.Outcome, error) {
	if s == nil {
		return nil, errors.New("pipeline: nil bid session")
	}
	if err := dlt.InstallmentFeasible(s.Network(), ld.Rounds); err != nil {
		return nil, fmt.Errorf("pipeline: %w", err)
	}
	if ld.Rounds == 1 {
		return s.Run(ld.Job)
	}
	fracs, err := dlt.RoundFractions(ld.Rounds, ld.Policy)
	if err != nil {
		return nil, fmt.Errorf("pipeline: %w", err)
	}
	n := s.NextRound()
	job := ld.Job
	outs := make([]*protocol.Outcome, 0, ld.Rounds)
	for k, f := range fracs {
		out, err := s.RunSub(job, n, k+1, ld.Rounds, f, ld.Policy)
		if err != nil {
			return nil, fmt.Errorf("pipeline: installment %d/%d: %w", k+1, ld.Rounds, err)
		}
		outs = append(outs, out)
		if !out.Completed {
			break
		}
		// Checkpointed crash recovery across installments: a processor that
		// crashed mid-computation is dead for the rest of the load — the
		// survivors carry the remaining installments while the completed
		// ones (already metered and paid via the telescoping sub-round
		// payments) stay credited.
		job = dropCrashed(job, out)
	}
	agg, err := aggregate(outs, ld.Policy)
	if err != nil {
		return nil, err
	}
	if ld.Job.Tracer != nil {
		// The load-level settlement closes the telescoping-payments
		// invariant: the sentinel checks this total against the sum of the
		// installment invoices recorded under "<load round>.iK".
		total := 0.0
		for _, p := range agg.Payments {
			total += p
		}
		ld.Job.Tracer.Event(obs.Event{
			Kind: obs.EvLoadSettled, From: protocol.UserID, Round: agg.RoundID,
			Values: []float64{total},
		})
	}
	return agg, nil
}

// dropCrashed returns the job the NEXT installment should run: processors
// the given installment evicted during Processing Load become abstainers
// (they cannot bid, receive load, or be paid again), and their crash
// specs leave the fault plan (a dead processor cannot crash twice, and
// the sub-round's setup rejects plans naming non-participants).
func dropCrashed(job protocol.JobConfig, out *protocol.Outcome) protocol.JobConfig {
	crashed := make(map[string]bool)
	for _, ev := range out.Evictions {
		if ev.Phase == obs.PhaseProcessing {
			crashed[ev.Proc] = true
		}
	}
	if len(crashed) == 0 {
		return job
	}
	behaviors := make([]agent.Behavior, len(out.Procs))
	copy(behaviors, job.Behaviors)
	for i, p := range out.Procs {
		if crashed[p] {
			behaviors[i] = agent.Behavior{Name: "crashed", Abstain: true}
		}
	}
	job.Behaviors = behaviors
	if job.Faults != nil && len(job.Faults.Crashes) > 0 {
		plan := *job.Faults
		plan.Crashes = nil
		for _, c := range job.Faults.Crashes {
			if !crashed[c.Proc] {
				plan.Crashes = append(plan.Crashes, c)
			}
		}
		job.Faults = &plan
	}
	return job
}

// aggregate folds per-installment outcomes into one load-level outcome.
func aggregate(outs []*protocol.Outcome, policy dlt.RoundPolicy) (*protocol.Outcome, error) {
	last := outs[len(outs)-1]
	rr, err := protocol.ParseRoundRef(last.RoundID)
	if err != nil {
		return nil, fmt.Errorf("pipeline: %w", err)
	}
	agg := &protocol.Outcome{
		Completed:    last.Completed,
		TerminatedIn: last.TerminatedIn,
		Procs:        last.Procs,
		Participated: last.Participated,
		Bids:         last.Bids,
		Alloc:        last.Alloc,
		Assignments:  last.Assignments,
		Exec:         last.Exec,
		RoundID:      protocol.RoundRef{Salt: rr.Salt, Round: rr.Round}.String(),
		BidReused:    last.BidReused,
		BidSpliced:   last.BidSpliced,
		// No single referee log spans sub-rounds: each installment's
		// Transcript verifies on its own, which keeps the evidence
		// separable. The aggregate's Transcript therefore stays nil.
		FineMagnitude: last.FineMagnitude,
		Installments:  outs,
		Evicted:       make([]bool, len(last.Procs)),
	}
	m := len(last.Procs)
	sum := func(pick func(*protocol.Outcome) []float64) []float64 {
		full := make([]float64, m)
		for _, out := range outs {
			if v := pick(out); v != nil {
				for i := range v {
					full[i] += v[i]
				}
			}
		}
		return full
	}
	agg.Payments = sum(func(o *protocol.Outcome) []float64 { return o.Payments })
	agg.Fines = sum(func(o *protocol.Outcome) []float64 { return o.Fines })
	agg.Rewards = sum(func(o *protocol.Outcome) []float64 { return o.Rewards })
	agg.Utilities = sum(func(o *protocol.Outcome) []float64 { return o.Utilities })
	agg.WorkCost = sum(func(o *protocol.Outcome) []float64 { return o.WorkCost })
	agg.Phi = sum(func(o *protocol.Outcome) []float64 { return o.Phi })
	for _, out := range outs {
		agg.UserCost += out.UserCost
		agg.LoadFraction += out.LoadFraction
		agg.Verdicts = append(agg.Verdicts, out.Verdicts...)
		agg.Evictions = append(agg.Evictions, out.Evictions...)
		for i, ev := range out.Evicted {
			if ev {
				agg.Evicted[i] = true
			}
		}
		agg.BusStats.Messages += out.BusStats.Messages
		agg.BusStats.Units += out.BusStats.Units
		agg.BusStats.Deliveries += out.BusStats.Deliveries
		agg.BusStats.DeliveredUnits += out.BusStats.DeliveredUnits
		agg.BusStats.Broadcasts += out.BusStats.Broadcasts
		agg.BusStats.Unicasts += out.BusStats.Unicasts
		agg.BusStats.Dropped += out.BusStats.Dropped
		agg.BusStats.Duplicated += out.BusStats.Duplicated
		agg.BusStats.Delayed += out.BusStats.Delayed
		agg.BusStats.Corrupted += out.BusStats.Corrupted
		agg.BusStats.Reordered += out.BusStats.Reordered
		agg.Fault.Retransmits += out.Fault.Retransmits
		agg.Fault.DupDiscards += out.Fault.DupDiscards
		agg.Fault.CorruptDiscards += out.Fault.CorruptDiscards
		agg.Fault.Timeouts += out.Fault.Timeouts
		agg.Fault.BackoffTime += out.Fault.BackoffTime
		agg.Fault.Evictions += out.Fault.Evictions
	}
	if agg.Completed {
		// The realized pipelined schedule: the last installment's member
		// set ran every completed installment, so the multi-round builder
		// over its realized rates and allocation is the load's timeline.
		in, alloc, err := realized(last)
		if err != nil {
			return nil, err
		}
		tl, err := dlt.MultiRoundSchedule(in, alloc, len(outs), policy)
		if err != nil {
			return nil, fmt.Errorf("pipeline: %w", err)
		}
		agg.Timeline = tl
		agg.Makespan = tl.Makespan
	}
	return agg, nil
}

// realized extracts the participant-space instance (realized execution
// rates) and allocation from a completed outcome's config-space series.
func realized(out *protocol.Outcome) (dlt.Instance, dlt.Allocation, error) {
	var w []float64
	var alloc dlt.Allocation
	for i := range out.Procs {
		if out.Participated[i] && !out.Evicted[i] {
			w = append(w, out.Exec[i])
			alloc = append(alloc, out.Alloc[i])
		}
	}
	if len(w) == 0 {
		return dlt.Instance{}, nil, errors.New("pipeline: outcome has no surviving participants")
	}
	in := dlt.Instance{Network: out.Timeline.Instance.Network, Z: out.Timeline.Instance.Z, W: w}
	if err := in.Validate(); err != nil {
		return dlt.Instance{}, nil, fmt.Errorf("pipeline: %w", err)
	}
	return in, alloc, nil
}
