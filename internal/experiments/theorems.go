package experiments

import (
	"fmt"
	"math"
	"math/rand"

	"dlsbl/internal/core"
	"dlsbl/internal/dlt"
)

// E4 — Theorem 2.1 (simultaneous finish) + closed-form/bisection
// cross-validation.
func init() {
	register(Experiment{
		ID:    "E4",
		Title: "Theorem 2.1 — optimal allocations equalize finishing times (plus solver cross-check)",
		Run: func(seed int64) (Result, error) {
			rng := rand.New(rand.NewSource(seed))
			tbl := Table{Columns: []string{"network", "m", "trials", "max finish spread", "max |closed-bisect|"}}
			var worstSpread, worstDelta float64
			for _, net := range dlt.Networks {
				for _, m := range []int{2, 4, 8, 16, 32, 64} {
					const trials = 20
					var maxSpread, maxDelta float64
					for trial := 0; trial < trials; trial++ {
						in := dlt.DefaultRandomInstance(rng, net, m)
						a, err := dlt.Optimal(in)
						if err != nil {
							return Result{}, err
						}
						spread, err := dlt.FinishSpread(in, a)
						if err != nil {
							return Result{}, err
						}
						ms, err := dlt.Makespan(in, a)
						if err != nil {
							return Result{}, err
						}
						rel := spread / ms
						if rel > maxSpread {
							maxSpread = rel
						}
						b, err := dlt.SolveBisect(in)
						if err != nil {
							return Result{}, err
						}
						for i := range a {
							if d := math.Abs(a[i] - b[i]); d > maxDelta {
								maxDelta = d
							}
						}
					}
					tbl.AddRow(net.String(), fmt.Sprintf("%d", m), fmt.Sprintf("%d", trials),
						f("%.2e", maxSpread), f("%.2e", maxDelta))
					worstSpread = math.Max(worstSpread, maxSpread)
					worstDelta = math.Max(worstDelta, maxDelta)
				}
			}
			return Result{
				ID: "E4", Title: "Theorem 2.1 simultaneous finish", Table: tbl,
				Notes: fmt.Sprintf("worst relative spread %.2e, worst solver disagreement %.2e — both at floating-point noise, matching the theorem", worstSpread, worstDelta),
			}, nil
		},
	})
}

// E5 — Theorem 2.2 (any allocation order is optimal).
func init() {
	register(Experiment{
		ID:    "E5",
		Title: "Theorem 2.2 — the optimal makespan is invariant under processor order",
		Run: func(seed int64) (Result, error) {
			rng := rand.New(rand.NewSource(seed))
			tbl := Table{Columns: []string{"network", "m", "permutations", "max relative makespan deviation"}}
			var worst float64
			for _, net := range dlt.Networks {
				for _, m := range []int{3, 6, 12} {
					in := dlt.DefaultRandomInstance(rng, net, m)
					_, base, err := dlt.OptimalMakespan(in)
					if err != nil {
						return Result{}, err
					}
					const perms = 50
					var maxDev float64
					for p := 0; p < perms; p++ {
						perm := in.Clone()
						lo, hi := 0, m
						switch net {
						case dlt.NCPFE:
							lo = 1
						case dlt.NCPNFE:
							hi = m - 1
						}
						for i := hi - 1; i > lo; i-- {
							j := lo + rng.Intn(i-lo+1)
							perm.W[i], perm.W[j] = perm.W[j], perm.W[i]
						}
						_, ms, err := dlt.OptimalMakespan(perm)
						if err != nil {
							return Result{}, err
						}
						if d := math.Abs(ms-base) / base; d > maxDev {
							maxDev = d
						}
					}
					tbl.AddRow(net.String(), fmt.Sprintf("%d", m), fmt.Sprintf("%d", perms), f("%.2e", maxDev))
					worst = math.Max(worst, maxDev)
				}
			}
			return Result{
				ID: "E5", Title: "Theorem 2.2 order invariance", Table: tbl,
				Notes: fmt.Sprintf("worst deviation %.2e — order does not matter, matching the theorem", worst),
			}, nil
		},
	})
}

// BidRatios is the sweep used by E6 and the strategic-bidding example.
var BidRatios = []float64{0.25, 0.5, 0.75, 0.9, 1.0, 1.1, 1.25, 1.5, 2.0, 3.0, 4.0}

// E6 — Theorems 3.1/5.2 (strategyproofness): utility vs bid ratio, peak
// at truth.
func init() {
	register(Experiment{
		ID:    "E6",
		Title: "Theorems 3.1/5.2 — truth-telling maximizes utility (bid-ratio sweep)",
		Run: func(seed int64) (Result, error) {
			rng := rand.New(rand.NewSource(seed))
			cols := []string{"bid ratio b/t"}
			for _, net := range dlt.Networks {
				cols = append(cols, "U/U_truth ("+net.String()+")")
			}
			tbl := Table{Columns: cols}
			const trials = 40
			// mean normalized utility per ratio per network.
			sums := make([][]float64, len(BidRatios))
			for i := range sums {
				sums[i] = make([]float64, len(dlt.Networks))
			}
			for ni, net := range dlt.Networks {
				for trial := 0; trial < trials; trial++ {
					in := core.RegimeSafeInstance(rng, net, 6)
					mech := core.Mechanism{Network: net, Z: in.Z}
					i := rng.Intn(in.M())
					pts, err := mech.BidSweep(in.W, i, BidRatios)
					if err != nil {
						return Result{}, err
					}
					var truth float64
					for _, p := range pts {
						if p.Ratio == 1 {
							truth = p.Utility
						}
					}
					for k, p := range pts {
						sums[k][ni] += p.Utility / truth
					}
				}
			}
			violations := 0
			for k, ratio := range BidRatios {
				row := []string{f("%.2f", ratio)}
				for ni := range dlt.Networks {
					mean := sums[k][ni] / trials
					row = append(row, f("%.4f", mean))
					if ratio != 1 && mean > 1+1e-9 {
						violations++
					}
				}
				tbl.AddRow(row...)
			}
			return Result{
				ID: "E6", Title: "strategyproofness sweep", Table: tbl,
				Notes: fmt.Sprintf("%d violations of the truthful peak across %d instances/network — the maximum sits at ratio 1.00, matching Theorem 3.1", violations, trials),
			}, nil
		},
	})
}

// E7 — Theorems 3.2/5.3 (voluntary participation).
func init() {
	register(Experiment{
		ID:    "E7",
		Title: "Theorems 3.2/5.3 — truthful agents never incur a loss",
		Run: func(seed int64) (Result, error) {
			rng := rand.New(rand.NewSource(seed))
			tbl := Table{Columns: []string{"network", "m", "instances", "min truthful utility", "violations"}}
			totalViolations := 0
			for _, net := range dlt.Networks {
				for _, m := range []int{2, 4, 8, 16} {
					const trials = 50
					minU := math.Inf(1)
					v := core.CheckVoluntaryParticipation(rng, net, trials, m, 1e-9)
					totalViolations += len(v)
					// Recompute the minimum utility over fresh instances
					// for the table.
					for trial := 0; trial < trials; trial++ {
						in := core.RegimeSafeInstance(rng, net, m)
						mech := core.Mechanism{Network: net, Z: in.Z}
						out, err := mech.Run(in.W, core.TruthfulExec(in.W))
						if err != nil {
							return Result{}, err
						}
						for _, u := range out.Utility {
							if u < minU {
								minU = u
							}
						}
					}
					tbl.AddRow(net.String(), fmt.Sprintf("%d", m), fmt.Sprintf("%d", trials),
						f("%.6f", minU), fmt.Sprintf("%d", len(v)))
				}
			}
			return Result{
				ID: "E7", Title: "voluntary participation", Table: tbl,
				Notes: fmt.Sprintf("%d negative-utility cases across all samples — truthful utility is always ≥ 0, matching Theorem 3.2", totalViolations),
			}, nil
		},
	})
}
