package experiments

import (
	"fmt"
	"math/rand"

	"dlsbl/internal/dlt"
)

// X4 — topology comparison: the same workload on the paper's bus
// (NCP-FE), on a daisy chain (linear network), and on a star with a
// computing root. All three use identical z and w; the comparison shows
// how much topology alone moves the optimal makespan.
func init() {
	register(Experiment{
		ID:    "X4",
		Title: "Extension: topology comparison — bus vs daisy chain vs star, same z and w",
		Run: func(seed int64) (Result, error) {
			rng := rand.New(rand.NewSource(seed))
			tbl := Table{Columns: []string{"m", "z", "T(bus NCP-FE)", "T(chain)", "T(star+root)", "chain/bus", "star/bus"}}
			for _, m := range []int{2, 4, 8, 16} {
				for _, z := range []float64{0.05, 0.2, 0.45} {
					const trials = 25
					var sumBus, sumChain, sumStar float64
					for trial := 0; trial < trials; trial++ {
						w := make([]float64, m)
						for i := range w {
							w[i] = 0.5 + rng.Float64()*7.5
						}
						bus := dlt.Instance{Network: dlt.NCPFE, Z: z, W: w}
						_, tBus, err := dlt.OptimalMakespan(bus)
						if err != nil {
							return Result{}, err
						}
						chain := dlt.LinearInstance{Z: z, W: w}
						_, tChain, err := dlt.OptimalLinearMakespan(chain)
						if err != nil {
							return Result{}, err
						}
						// Star with the same originator computing at w[0]
						// and uniform links to the rest — the direct star
						// analogue of the NCP-FE bus.
						tStar := tBus
						if m >= 2 {
							zs := make([]float64, m-1)
							for i := range zs {
								zs[i] = z
							}
							star := dlt.StarInstance{RootW: w[0], Z: zs, W: w[1:]}
							sa, err := dlt.OptimalStar(star)
							if err != nil {
								return Result{}, err
							}
							tStar, err = dlt.StarMakespan(star, sa)
							if err != nil {
								return Result{}, err
							}
						}
						sumBus += tBus
						sumChain += tChain
						sumStar += tStar
					}
					tbl.AddRow(fmt.Sprintf("%d", m), f("%.2f", z),
						f("%.4f", sumBus/trials), f("%.4f", sumChain/trials), f("%.4f", sumStar/trials),
						f("%.3f", sumChain/sumBus), f("%.3f", sumStar/sumBus))
				}
			}
			return Result{
				ID: "X4", Title: "topology comparison", Table: tbl,
				Notes: "with uniform links the star+root is exactly the NCP-FE bus (ratio 1.000 — cross-check); the chain pipelines hops concurrently, so for small z it tracks the bus closely, while for large z and long chains the repeated store-and-forward of the tail costs it",
			}, nil
		},
	})
}

// X5 — multi-round ablation (the multi-round scheduling the paper cites
// as related work): splitting the load into R installments lets late
// processors start earlier; how much does it buy on the CP bus, and when
// does per-round overheadless pipelining stop helping?
func init() {
	register(Experiment{
		ID:    "X5",
		Title: "Extension: multi-round ablation — makespan vs round count and policy",
		Run: func(seed int64) (Result, error) {
			rng := rand.New(rand.NewSource(seed))
			tbl := Table{Columns: []string{"z", "rounds", "policy", "T(multi)/T(single)"}}
			const m = 8
			const trials = 20
			for _, z := range []float64{0.1, 0.3, 0.6} {
				for _, rounds := range []int{1, 2, 4, 8} {
					for _, policy := range []dlt.RoundPolicy{dlt.EqualRounds, dlt.GeometricRounds} {
						var sumRatio float64
						for trial := 0; trial < trials; trial++ {
							w := make([]float64, m)
							for i := range w {
								w[i] = 0.5 + rng.Float64()*3.5
							}
							in := dlt.Instance{Network: dlt.CP, Z: z, W: w}
							_, single, err := dlt.OptimalMakespan(in)
							if err != nil {
								return Result{}, err
							}
							tl, err := dlt.MultiRound(in, rounds, policy)
							if err != nil {
								return Result{}, err
							}
							sumRatio += tl.Makespan / single
						}
						tbl.AddRow(f("%.1f", z), fmt.Sprintf("%d", rounds),
							policy.String(), f("%.4f", sumRatio/trials))
					}
				}
			}
			return Result{
				ID: "X5", Title: "multi-round ablation", Table: tbl,
				Notes: "one round reproduces the single-round optimum exactly (ratio 1); with more rounds every processor starts on a small early chunk instead of waiting for its whole fraction, so multi-round BEATS the single-round bound (ratios below 1, strongest ≈0.88 at moderate z) with diminishing returns beyond ~4 rounds — exactly the pipelining gain the multi-round literature exploits; real systems trade it against per-message overheads, which the affine model (OptimalAffine) prices",
			}, nil
		},
	})
}
