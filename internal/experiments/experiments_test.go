package experiments

import (
	"reflect"
	"strconv"
	"strings"
	"testing"

	"dlsbl/internal/dlt"
	"dlsbl/internal/protocol"
	"dlsbl/internal/sig"
)

func TestRegistryComplete(t *testing.T) {
	all := All()
	if len(all) != 31 {
		t.Fatalf("registry has %d experiments, want 31 (E1…E12 + X1…X19)", len(all))
	}
	for k := 0; k < 12; k++ {
		want := "E" + strconv.Itoa(k+1)
		if all[k].ID != want {
			t.Errorf("position %d: id %s, want %s", k, all[k].ID, want)
		}
	}
	for k := 0; k < 19; k++ {
		want := "X" + strconv.Itoa(k+1)
		if all[12+k].ID != want {
			t.Errorf("position %d: id %s, want %s", 12+k, all[12+k].ID, want)
		}
	}
	if _, ok := ByID("E6"); !ok {
		t.Error("ByID(E6) failed")
	}
	if _, ok := ByID("E99"); ok {
		t.Error("phantom experiment found")
	}
}

func TestX1SortedOrderOptimal(t *testing.T) {
	e, _ := ByID("X1")
	res, err := e.Run(7)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(res.Notes, "0 mismatches") {
		t.Errorf("X1 sequencing theorem violated: %s", res.Notes)
	}
}

func TestX3OverpaymentDecaysWithM(t *testing.T) {
	e, _ := ByID("X3")
	res, err := e.Run(7)
	if err != nil {
		t.Fatal(err)
	}
	// Within each network block, the mean overpayment ratio at m=2 must
	// exceed the one at m=32.
	byNet := map[string][]float64{}
	for _, row := range res.Table.Rows {
		v, err := strconv.ParseFloat(row[2], 64)
		if err != nil {
			t.Fatal(err)
		}
		if v < 1 {
			t.Errorf("overpayment ratio %v < 1 (user pays less than cost?)", v)
		}
		byNet[row[0]] = append(byNet[row[0]], v)
	}
	for net, ratios := range byNet {
		if ratios[0] <= ratios[len(ratios)-1] {
			t.Errorf("%s: overpayment did not decay with m: %v", net, ratios)
		}
	}
}

// TestAllExperimentsRun executes every experiment once and checks the
// shape assertions encoded in their notes.
func TestAllExperimentsRun(t *testing.T) {
	for _, e := range All() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			res, err := e.Run(42)
			if err != nil {
				t.Fatalf("%s failed: %v", e.ID, err)
			}
			if res.ID != e.ID {
				t.Errorf("result id %s, want %s", res.ID, e.ID)
			}
			if len(res.Table.Columns) == 0 || len(res.Table.Rows) == 0 {
				t.Errorf("%s produced an empty table", e.ID)
			}
			s := res.String()
			if !strings.Contains(s, e.ID) {
				t.Errorf("%s rendering missing id", e.ID)
			}
		})
	}
}

func TestFigureExperimentsCarryDiagrams(t *testing.T) {
	for _, id := range []string{"E1", "E2", "E3"} {
		e, ok := ByID(id)
		if !ok {
			t.Fatalf("%s missing", id)
		}
		res, err := e.Run(1)
		if err != nil {
			t.Fatal(err)
		}
		if res.Figure == "" {
			t.Errorf("%s has no figure", id)
		}
		if !strings.Contains(res.Figure, "legend:") {
			t.Errorf("%s figure missing legend", id)
		}
		if !strings.Contains(res.Notes, "spread") {
			t.Errorf("%s notes missing the Theorem 2.1 check", id)
		}
	}
}

func TestE6TruthfulPeak(t *testing.T) {
	e, _ := ByID("E6")
	res, err := e.Run(7)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(res.Notes, "0 violations") {
		t.Errorf("E6 found strategyproofness violations: %s", res.Notes)
	}
	// The ratio-1 row must read 1.0000 in every network column.
	for _, row := range res.Table.Rows {
		if row[0] == "1.00" {
			for _, cell := range row[1:] {
				if cell != "1.0000" {
					t.Errorf("truthful row not normalized to 1: %v", row)
				}
			}
		}
	}
}

func TestE7NoLosses(t *testing.T) {
	e, _ := ByID("E7")
	res, err := e.Run(7)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(res.Notes, "0 negative-utility cases") {
		t.Errorf("E7 found losses: %s", res.Notes)
	}
}

func TestE8NoProfitableDeviation(t *testing.T) {
	e, _ := ByID("E8")
	res, err := e.Run(7)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(res.Notes, "0 profitable deviations") {
		t.Errorf("E8 found profitable deviations: %s", res.Notes)
	}
}

func TestE9NoWrongfulFines(t *testing.T) {
	e, _ := ByID("E9")
	res, err := e.Run(7)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(res.Notes, "0 wrongful outcomes") {
		t.Errorf("E9 found wrongful fines: %s", res.Notes)
	}
}

func TestE10QuadraticExponent(t *testing.T) {
	e, _ := ByID("E10")
	res, err := e.Run(7)
	if err != nil {
		t.Fatal(err)
	}
	// The exponent is embedded in the notes as m^<p>; parse it.
	idx := strings.Index(res.Notes, "m^")
	if idx < 0 {
		t.Fatalf("E10 notes missing exponent: %s", res.Notes)
	}
	rest := res.Notes[idx+2:]
	end := strings.IndexAny(rest, " (")
	p, err := strconv.ParseFloat(rest[:end], 64)
	if err != nil {
		t.Fatalf("cannot parse exponent from %q", rest)
	}
	if p < 1.7 || p > 2.1 {
		t.Errorf("communication exponent %v not ≈ 2", p)
	}
}

func TestE12AblationShape(t *testing.T) {
	e, _ := ByID("E12")
	res, err := e.Run(7)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(res.Notes, "strictly decreasing in slack: true") {
		t.Errorf("E12 verified curve not decreasing: %s", res.Notes)
	}
	if !strings.Contains(res.Notes, "flat (no incentive to run at full speed): true") {
		t.Errorf("E12 unverified curve not flat: %s", res.Notes)
	}
}

func TestTableCSV(t *testing.T) {
	tbl := Table{Columns: []string{"a", "b"}}
	tbl.AddRow("1", `has,comma`)
	tbl.AddRow(`has"quote`, "plain")
	csv := tbl.CSV()
	want := "a,b\n1,\"has,comma\"\n\"has\"\"quote\",plain\n"
	if csv != want {
		t.Errorf("CSV = %q, want %q", csv, want)
	}
	res := Result{ID: "E1", Title: "t", Notes: "multi\nline", Table: tbl}
	out := res.CSV()
	if !strings.Contains(out, "# E1: t") || !strings.Contains(out, "# notes: multi line") {
		t.Errorf("result CSV headers missing:\n%s", out)
	}
}

func TestTableRendering(t *testing.T) {
	tbl := Table{Columns: []string{"a", "long-column"}}
	tbl.AddRow("1", "2")
	tbl.AddRow("333", "4")
	s := tbl.String()
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("table lines = %d, want 4:\n%s", len(lines), s)
	}
	if !strings.Contains(lines[1], "---") {
		t.Errorf("missing separator: %q", lines[1])
	}
	if (Table{}).String() != "" {
		t.Error("empty table rendered non-empty")
	}
}

// TestX16ParallelDeterministic pins the parallel fault sweep's contract:
// the worker pool may execute the (p, trial) cells in any interleaving,
// but the aggregated table — row order, float accumulation, every cell —
// must be bit-identical run to run (and therefore identical to the
// sequential sweep it replaced).
func TestX16ParallelDeterministic(t *testing.T) {
	x16, ok := ByID("X16")
	if !ok {
		t.Fatal("X16 not registered")
	}
	first, err := x16.Run(7)
	if err != nil {
		t.Fatal(err)
	}
	for rerun := 0; rerun < 2; rerun++ {
		again, err := x16.Run(7)
		if err != nil {
			t.Fatal(err)
		}
		if first.Table.String() != again.Table.String() {
			t.Fatalf("X16 table not deterministic across parallel runs:\n--- first\n%s\n--- rerun\n%s",
				first.Table.String(), again.Table.String())
		}
	}
}

// TestWarmKeyringParity pins the harness-wide keyring (expKeys) as pure
// overhead removal: the same config run cold (fresh keys) and warm
// (cached keys) must produce bit-identical economics, because bids,
// allocations, meters and ledger flows never look at the key bytes.
func TestWarmKeyringParity(t *testing.T) {
	cfg := func(keys *sig.Keyring) protocol.Config {
		return protocol.Config{
			Network: dlt.NCPFE, Z: 0.2, TrueW: []float64{1, 1.5, 2, 2.5},
			Seed: 11, Keys: keys,
		}
	}
	cold, err := protocol.Run(cfg(nil))
	if err != nil {
		t.Fatal(err)
	}
	warm, err := protocol.Run(cfg(expKeys)) // first warm run also warms the ring
	if err != nil {
		t.Fatal(err)
	}
	rewarm, err := protocol.Run(cfg(expKeys))
	if err != nil {
		t.Fatal(err)
	}
	for name, got := range map[string][]float64{"warm": warm.Payments, "rewarm": rewarm.Payments} {
		if !reflect.DeepEqual(got, cold.Payments) {
			t.Errorf("%s payments = %v, cold run got %v", name, got, cold.Payments)
		}
	}
	if !reflect.DeepEqual(warm.Utilities, cold.Utilities) || !reflect.DeepEqual(rewarm.Utilities, cold.Utilities) {
		t.Errorf("utilities diverge: cold %v warm %v rewarm %v", cold.Utilities, warm.Utilities, rewarm.Utilities)
	}
	if !reflect.DeepEqual(warm.Alloc, cold.Alloc) || warm.Makespan != cold.Makespan {
		t.Errorf("schedule diverges: cold alloc %v warm %v", cold.Alloc, warm.Alloc)
	}
}

// TestX17AmortizationShape pins X17's two claims: amortization never
// moves a payment, and the reuse-round traffic is Θ(m) while the full
// round stays Θ(m²).
func TestX17AmortizationShape(t *testing.T) {
	e, ok := ByID("X17")
	if !ok {
		t.Fatal("X17 not registered")
	}
	res, err := e.Run(7)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(res.Notes, "0 payment mismatches") {
		t.Errorf("X17 amortization changed payments: %s", res.Notes)
	}
	// Parse the two exponents out of "∝ m^<p> (R²=…)".
	var exps []float64
	rest := res.Notes
	for {
		i := strings.Index(rest, "m^")
		if i < 0 {
			break
		}
		rest = rest[i+2:]
		end := strings.IndexAny(rest, " (")
		p, err := strconv.ParseFloat(rest[:end], 64)
		if err != nil {
			t.Fatalf("cannot parse exponent from %q", rest)
		}
		exps = append(exps, p)
	}
	if len(exps) != 2 {
		t.Fatalf("X17 notes carry %d exponents, want 2: %s", len(exps), res.Notes)
	}
	if exps[0] < 1.7 || exps[0] > 2.2 {
		t.Errorf("full-round exponent %v not ≈ 2", exps[0])
	}
	if exps[1] < 0.8 || exps[1] > 1.3 {
		t.Errorf("reuse-round exponent %v not ≈ 1", exps[1])
	}
	if exps[0]-exps[1] < 0.5 {
		t.Errorf("amortization did not drop the traffic order: full m^%.2f vs reuse m^%.2f", exps[0], exps[1])
	}
}
