package experiments

import (
	"fmt"
	"math"
	"math/rand"

	"dlsbl/internal/core"
	"dlsbl/internal/dlt"
)

// Extension experiments (X-series) — beyond the paper, along its stated
// future-work axes: other network architectures (X1) and open
// mechanism-design questions the compensation-and-bonus construction
// raises (X2 coalitions, X3 frugality). Results are recorded in
// EXPERIMENTS.md's extension section.

// X1 — star networks with heterogeneous links: the service order now
// matters (unlike the bus, Theorem 2.2) and sorting children by link
// speed is optimal.
func init() {
	register(Experiment{
		ID:    "X1",
		Title: "Extension: star networks — service order matters, sort-by-z is optimal",
		Run: func(seed int64) (Result, error) {
			rng := rand.New(rand.NewSource(seed))
			tbl := Table{Columns: []string{"m", "root", "T(sorted)", "T(exhaustive)", "T(identity)", "T(worst sampled)", "sorted=best"}}
			mismatches := 0
			for _, m := range []int{3, 5, 7} {
				for _, withRoot := range []bool{false, true} {
					s := dlt.StarInstance{Z: make([]float64, m), W: make([]float64, m)}
					for i := 0; i < m; i++ {
						s.Z[i] = 0.05 + rng.Float64()*0.6
						s.W[i] = 0.5 + rng.Float64()*5
					}
					if withRoot {
						s.RootW = 0.5 + rng.Float64()*5
					}
					_, _, sorted, err := dlt.OptimalStarOrder(s)
					if err != nil {
						return Result{}, err
					}
					_, best, err := dlt.ExhaustiveStarOrder(s)
					if err != nil {
						return Result{}, err
					}
					idAlloc, err := dlt.OptimalStar(s)
					if err != nil {
						return Result{}, err
					}
					identity, err := dlt.StarMakespan(s, idAlloc)
					if err != nil {
						return Result{}, err
					}
					worst := identity
					for k := 0; k < 30; k++ {
						perm := rng.Perm(m)
						inst, err := s.Permute(perm)
						if err != nil {
							return Result{}, err
						}
						alloc, err := dlt.OptimalStar(inst)
						if err != nil {
							return Result{}, err
						}
						ms, err := dlt.StarMakespan(inst, alloc)
						if err != nil {
							return Result{}, err
						}
						if ms > worst {
							worst = ms
						}
					}
					match := math.Abs(sorted-best) <= 1e-9*math.Max(best, 1)
					if !match {
						mismatches++
					}
					root := "no"
					if withRoot {
						root = "yes"
					}
					tbl.AddRow(fmt.Sprintf("%d", m), root,
						f("%.5f", sorted), f("%.5f", best), f("%.5f", identity), f("%.5f", worst),
						fmt.Sprintf("%v", match))
				}
			}
			return Result{
				ID: "X1", Title: "star sequencing", Table: tbl,
				Notes: fmt.Sprintf("%d mismatches between sort-by-z and exhaustive search (theory predicts 0); the uniform-link special case reduces to the paper's bus model exactly", mismatches),
			}, nil
		},
	})
}

// X2 — coalition analysis: DLS-BL is strategyproof for individuals; is it
// group-strategyproof? A partner can inflate a colleague's bonus baseline
// T(α(b_{-i}), b_{-i}) by overbidding, at a cost to itself. This
// experiment measures whether any two-processor coalition can raise its
// TOTAL utility over joint truth-telling (with internal side payments,
// total is what matters).
func init() {
	register(Experiment{
		ID:    "X2",
		Title: "Extension: coalition analysis — can pairs profit by coordinated misreporting?",
		Run: func(seed int64) (Result, error) {
			rng := rand.New(rand.NewSource(seed))
			tbl := Table{Columns: []string{"partner bid factor", "mean Δ(U_i+U_j)", "max Δ(U_i+U_j)", "coalitions gaining"}}
			factors := []float64{1.25, 1.5, 2, 3, 5}
			const trials = 40
			maxOverall := math.Inf(-1)
			for _, g := range factors {
				var sum, maxGain float64
				maxGain = math.Inf(-1)
				gaining := 0
				total := 0
				for trial := 0; trial < trials; trial++ {
					in := core.RegimeSafeInstance(rng, dlt.NCPFE, 6)
					mech := core.Mechanism{Network: dlt.NCPFE, Z: in.Z}
					truthOut, err := mech.Run(in.W, core.TruthfulExec(in.W))
					if err != nil {
						return Result{}, err
					}
					i := rng.Intn(in.M())
					j := rng.Intn(in.M())
					if i == j {
						j = (j + 1) % in.M()
					}
					// Partner j overbids by g; beneficiary i stays
					// truthful; both execute at true speed.
					bids := append([]float64(nil), in.W...)
					bids[j] *= g
					exec := core.TruthfulExec(in.W)
					devOut, err := mech.Run(bids, exec)
					if err != nil {
						return Result{}, err
					}
					delta := (devOut.Utility[i] + devOut.Utility[j]) -
						(truthOut.Utility[i] + truthOut.Utility[j])
					sum += delta
					if delta > maxGain {
						maxGain = delta
					}
					if delta > 1e-9 {
						gaining++
					}
					total++
				}
				if maxGain > maxOverall {
					maxOverall = maxGain
				}
				tbl.AddRow(f("%.2f", g), f("%+.5f", sum/float64(total)),
					f("%+.5f", maxGain), fmt.Sprintf("%d/%d", gaining, total))
			}
			verdict := "no sampled coalition profits — DLS-BL appears resistant to pairwise collusion on these instances"
			if maxOverall > 1e-9 {
				verdict = fmt.Sprintf("coalitions CAN profit (max joint gain %+.5f): the partner's overbid inflates the colleague's bonus baseline T_{-i} by more than the partner loses — DLS-BL is NOT group-strategyproof, a known limitation of compensation-and-bonus mechanisms the paper does not address", maxOverall)
			}
			return Result{ID: "X2", Title: "coalition analysis", Table: tbl, Notes: verdict}, nil
		},
	})
}

// X3 — frugality: how much does the user overpay relative to the true
// processing cost Σ α_i·w_i? VCG-style bonus payments are known to be
// non-frugal; this quantifies it for DLS-BL as the system scales.
func init() {
	register(Experiment{
		ID:    "X3",
		Title: "Extension: frugality — the user's overpayment ratio ΣQ / Σα·w",
		Run: func(seed int64) (Result, error) {
			rng := rand.New(rand.NewSource(seed))
			tbl := Table{Columns: []string{"network", "m", "mean ΣQ/cost", "max ΣQ/cost", "bonus share of ΣQ"}}
			for _, net := range dlt.Networks {
				for _, m := range []int{2, 4, 8, 16, 32} {
					const trials = 30
					var sumRatio, maxRatio, sumBonusShare float64
					for trial := 0; trial < trials; trial++ {
						in := core.RegimeSafeInstance(rng, net, m)
						mech := core.Mechanism{Network: net, Z: in.Z}
						out, err := mech.Run(in.W, core.TruthfulExec(in.W))
						if err != nil {
							return Result{}, err
						}
						var cost, bonus float64
						for i := range out.Compensation {
							cost += out.Compensation[i]
							bonus += out.Bonus[i]
						}
						ratio := out.UserCost / cost
						sumRatio += ratio
						if ratio > maxRatio {
							maxRatio = ratio
						}
						sumBonusShare += bonus / out.UserCost
					}
					tbl.AddRow(net.String(), fmt.Sprintf("%d", m),
						f("%.4f", sumRatio/trials), f("%.4f", maxRatio),
						f("%.4f", sumBonusShare/trials))
				}
			}
			return Result{
				ID: "X3", Title: "frugality", Table: tbl,
				Notes: "the bonus is each processor's marginal contribution T_{-i}−T, so overpayment is largest for tiny systems (removing one of two processors hurts a lot) and decays toward 1 as m grows and individual processors become dispensable",
			}, nil
		},
	})
}
