package experiments

import (
	"fmt"
	"math/rand"

	"dlsbl/internal/dlt"
	"dlsbl/internal/protocol"
	"dlsbl/internal/sig"
	"dlsbl/internal/stats"
)

// expKeys is the harness-wide warm keyring: every experiment that runs the
// full protocol hands it to protocol.Config.Keys, so only the first run
// that needs a given identity pays Ed25519 key generation and the rest of
// the suite reuses the pair (the ROADMAP Performance leftover). Key reuse
// never changes the economics — see TestWarmKeyringParity, which pins a
// cold run against a warm one bit for bit.
var expKeys = sig.NewKeyring()

// X17 — amortized multi-load rounds: a pool that serves a stream of k
// loads does not need to re-run Bidding for each one. A
// protocol.BidSession bids once, caches the signed bids, and serves every
// later load from the cache, so the per-job control traffic drops from
// the bidding round's Θ(m²) bus deliveries (m signed-bid broadcasts, each
// delivered to m−1 peers and the referee) to the Θ(m) of the
// allocation/report exchanges — Θ(k·m²) total becomes Θ(m² + k·m). The
// experiment runs both modes over identical jobs and checks the payments
// are bit-identical, so the saving is pure overhead, not a different
// mechanism.
func init() {
	register(Experiment{
		ID:    "X17",
		Title: "Extension: amortized multi-load rounds — bid once, allocate many (Θ(k·m²) → Θ(m² + k·m))",
		Run: func(seed int64) (Result, error) {
			const k = 8
			ks := []int{4, 8} // shorter streams are prefixes of the k=8 run
			rng := rand.New(rand.NewSource(seed))
			tbl := Table{Columns: []string{
				"m", "k", "per-job deliv (total)", "amortized deliv (total)",
				"bid round", "reuse round", "reuse/m", "saved %"}}
			var ms, jobRound, reuseRound []float64
			mismatches := 0
			for _, m := range []int{4, 8, 16, 32} {
				w := make([]float64, m)
				for i := range w {
					w[i] = 0.5 + rng.Float64()*7.5
				}
				// Per-job mode: every load replays the full five phases.
				perCum := make([]int, k) // deliveries through job j
				perOuts := make([]*protocol.Outcome, k)
				for j := 0; j < k; j++ {
					out, err := protocol.Run(protocol.Config{
						Network: dlt.NCPFE, Z: 0.1, TrueW: w,
						Seed: seed + int64(j), NBlocks: 8 * m, Keys: expKeys,
					})
					if err != nil {
						return Result{}, err
					}
					if !out.Completed {
						return Result{}, fmt.Errorf("X17: honest per-job run m=%d j=%d terminated", m, j)
					}
					perCum[j] = out.BusStats.Deliveries
					if j > 0 {
						perCum[j] += perCum[j-1]
					}
					perOuts[j] = out
				}
				// Amortized mode: one BidSession serves the same k loads.
				sess, err := protocol.NewBidSession(protocol.Config{
					Network: dlt.NCPFE, Z: 0.1, TrueW: w, Keys: expKeys,
				})
				if err != nil {
					return Result{}, err
				}
				amCum := make([]int, k)
				bidDeliv, reuseDeliv := 0, 0
				for j := 0; j < k; j++ {
					out, err := sess.Run(protocol.JobConfig{Seed: seed + int64(j), NBlocks: 8 * m})
					if err != nil {
						return Result{}, err
					}
					if out.BidReused != (j > 0) {
						return Result{}, fmt.Errorf("X17: m=%d job %d reused=%v", m, j, out.BidReused)
					}
					amCum[j] = out.BusStats.Deliveries
					if j == 0 {
						bidDeliv = out.BusStats.Deliveries
					} else {
						amCum[j] += amCum[j-1]
						reuseDeliv = out.BusStats.Deliveries
					}
					for i := range w {
						if out.Payments[i] != perOuts[j].Payments[i] {
							mismatches++
						}
					}
				}
				ms = append(ms, float64(m))
				jobRound = append(jobRound, float64(bidDeliv))
				reuseRound = append(reuseRound, float64(reuseDeliv))
				for _, kk := range ks {
					tbl.AddRow(fmt.Sprintf("%d", m), fmt.Sprintf("%d", kk),
						fmt.Sprintf("%d", perCum[kk-1]), fmt.Sprintf("%d", amCum[kk-1]),
						fmt.Sprintf("%d", bidDeliv), fmt.Sprintf("%d", reuseDeliv),
						f("%.2f", float64(reuseDeliv)/float64(m)),
						f("%.1f", 100*(1-float64(amCum[kk-1])/float64(perCum[kk-1]))))
				}
			}
			pFull, _, r2Full, err := stats.FitPowerLaw(ms, jobRound)
			if err != nil {
				return Result{}, err
			}
			pReuse, _, r2Reuse, err := stats.FitPowerLaw(ms, reuseRound)
			if err != nil {
				return Result{}, err
			}
			return Result{
				ID: "X17", Title: "bid once, allocate many", Table: tbl,
				Notes: fmt.Sprintf("%d payment mismatches across all (m, job) cells (amortization must not change the mechanism: 0); "+
					"power-law fits over m: full round deliveries ∝ m^%.2f (R²=%.4f), reuse round ∝ m^%.2f (R²=%.4f) — "+
					"per-job control traffic drops Θ(m²)→Θ(m) after round one",
					mismatches, pFull, r2Full, pReuse, r2Reuse),
			}, nil
		},
	})
}
