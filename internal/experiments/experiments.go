// Package experiments regenerates every artifact of the paper's
// evaluation. The paper is a theory paper: its "results" are three
// execution-diagram figures and eight theorems/lemmas. Each experiment
// E1…E12 reproduces one of them empirically (see DESIGN.md §4 for the
// index); cmd/dls-bench prints them all and EXPERIMENTS.md records the
// paper-vs-measured comparison.
package experiments

import (
	"fmt"
	"sort"
	"strings"
)

// Result is the output of one experiment: a table, and for the figure
// experiments additionally a rendered diagram.
type Result struct {
	ID     string
	Title  string
	Table  Table
	Figure string // empty unless the experiment reproduces a figure
	Notes  string
}

// Table is a simple formatted results table.
type Table struct {
	Columns []string
	Rows    [][]string
}

// AddRow appends a row of already-formatted cells.
func (t *Table) AddRow(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// String renders the table with aligned columns.
func (t Table) String() string {
	if len(t.Columns) == 0 {
		return ""
	}
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[min(i, len(widths)-1)], cell)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Columns)
	sep := make([]string, len(t.Columns))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.Rows {
		writeRow(row)
	}
	return b.String()
}

// CSV renders the table as comma-separated values with a header row.
// Cells containing commas, quotes or newlines are quoted.
func (t Table) CSV() string {
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteByte(',')
			}
			if strings.ContainsAny(c, ",\"\n") {
				b.WriteByte('"')
				b.WriteString(strings.ReplaceAll(c, `"`, `""`))
				b.WriteByte('"')
			} else {
				b.WriteString(c)
			}
		}
		b.WriteByte('\n')
	}
	writeRow(t.Columns)
	for _, row := range t.Rows {
		writeRow(row)
	}
	return b.String()
}

// CSV renders the result as a CSV section: a comment header with the
// experiment id/title/notes followed by the table.
func (r Result) CSV() string {
	var b strings.Builder
	fmt.Fprintf(&b, "# %s: %s\n", r.ID, r.Title)
	if r.Notes != "" {
		fmt.Fprintf(&b, "# notes: %s\n", strings.ReplaceAll(r.Notes, "\n", " "))
	}
	b.WriteString(r.Table.CSV())
	return b.String()
}

// String renders the full result.
func (r Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", r.ID, r.Title)
	if r.Figure != "" {
		b.WriteString(r.Figure)
		b.WriteByte('\n')
	}
	b.WriteString(r.Table.String())
	if r.Notes != "" {
		fmt.Fprintf(&b, "notes: %s\n", r.Notes)
	}
	return b.String()
}

// Experiment couples an identifier with its generator. Seed makes every
// randomized experiment reproducible.
type Experiment struct {
	ID    string
	Title string
	Run   func(seed int64) (Result, error)
}

// registry of all experiments, populated by the e*.go files.
var registry []Experiment

func register(e Experiment) { registry = append(registry, e) }

// All returns every experiment sorted by ID.
func All() []Experiment {
	out := append([]Experiment(nil), registry...)
	sort.Slice(out, func(i, j int) bool { return idOrder(out[i].ID) < idOrder(out[j].ID) })
	return out
}

// ByID looks an experiment up.
func ByID(id string) (Experiment, bool) {
	for _, e := range registry {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

// idOrder sorts E2 before E10 and every E before every X (the extension
// experiments).
func idOrder(id string) int {
	n := 0
	for _, r := range id {
		if r >= '0' && r <= '9' {
			n = n*10 + int(r-'0')
		}
	}
	if strings.HasPrefix(id, "X") {
		n += 1000
	}
	return n
}

func f(format string, v float64) string { return fmt.Sprintf(format, v) }

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
