package experiments

import (
	"fmt"
	"math"
	"math/rand"

	"dlsbl/internal/core"
)

// X6 — the DLS-BL mechanism transplanted onto the star network ("a
// cohesive theory that combines DLT with incentives", the paper's
// concluding goal): with the bid-independent z-order, the
// compensation-and-bonus payments remain strategyproof and voluntary on
// heterogeneous links.
func init() {
	register(Experiment{
		ID:    "X6",
		Title: "Extension: DLS-BL on star networks — strategyproofness survives heterogeneous links",
		Run: func(seed int64) (Result, error) {
			rng := rand.New(rand.NewSource(seed))
			ratios := []float64{0.25, 0.5, 0.75, 1.0, 1.5, 2.0, 4.0}
			tbl := Table{Columns: []string{"bid ratio b/t", "mean U/U_truth", "max U/U_truth"}}
			const trials = 60
			sums := make([]float64, len(ratios))
			maxs := make([]float64, len(ratios))
			for i := range maxs {
				maxs[i] = math.Inf(-1)
			}
			violations := 0
			minTruthU := math.Inf(1)
			for trial := 0; trial < trials; trial++ {
				n := 2 + rng.Intn(6)
				z := make([]float64, n)
				w := make([]float64, n)
				for i := 0; i < n; i++ {
					z[i] = 0.02 + rng.Float64()*0.4
					w[i] = 0.5 + rng.Float64()*7.5
				}
				mech := core.StarMechanism{Z: z}
				i := rng.Intn(n)
				truthOut, err := mech.Run(w, core.TruthfulExec(w))
				if err != nil {
					return Result{}, err
				}
				truthU := truthOut.Utility[i]
				for _, u := range truthOut.Utility {
					if u < minTruthU {
						minTruthU = u
					}
				}
				for k, ratio := range ratios {
					bids := append([]float64(nil), w...)
					bids[i] = w[i] * ratio
					exec := core.TruthfulExec(w)
					exec[i] = math.Max(bids[i], w[i])
					devOut, err := mech.Run(bids, exec)
					if err != nil {
						return Result{}, err
					}
					norm := devOut.Utility[i] / truthU
					sums[k] += norm
					if norm > maxs[k] {
						maxs[k] = norm
					}
					if ratio != 1 && devOut.Utility[i] > truthU+1e-9 {
						violations++
					}
				}
			}
			for k, ratio := range ratios {
				tbl.AddRow(f("%.2f", ratio), f("%.4f", sums[k]/trials), f("%.4f", maxs[k]))
			}
			return Result{
				ID: "X6", Title: "star mechanism", Table: tbl,
				Notes: fmt.Sprintf("%d strategyproofness violations across %d random heterogeneous-link instances (theory predicts 0); minimum truthful utility %.6f ≥ 0 (voluntary participation also carries over). Key design point: the service order is a function of the PUBLIC link times only, so no bid can buy a better slot", violations, trials, minTruthU),
			}, nil
		},
	})
}
