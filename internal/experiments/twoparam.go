package experiments

import (
	"fmt"
	"math"
	"math/rand"

	"dlsbl/internal/core"
)

// X15 — two-parameter bids: the whole paper lives inside the one-
// parameter agent model (each processor's only private value is w).
// What if the LINK time z is private too? Multi-parameter mechanism
// design is famously hard (Nisan–Ronen), and a z-bid can buy an earlier
// service slot on the star. This experiment measures whether the
// DLS-BL-style mechanism with FULL ex-post verification (the wire exposes
// the true z, the meter the true w̃) is manipulable in two dimensions.
func init() {
	register(Experiment{
		ID:    "X15",
		Title: "Extension: two-parameter bids — full verification rescues multi-parameter truthfulness",
		Run: func(seed int64) (Result, error) {
			rng := rand.New(rand.NewSource(seed))
			tbl := Table{Columns: []string{"lie", "mean ΔU", "max ΔU", "profitable"}}
			type lie struct {
				label  string
				zf, wf float64
			}
			lies := []lie{
				{"claim 4× faster link", 0.25, 1},
				{"claim 2× faster link", 0.5, 1},
				{"claim 2× slower link", 2, 1},
				{"claim 2× faster cpu", 1, 0.5},
				{"claim 2× slower cpu", 1, 2},
				{"fast link + fast cpu", 0.5, 0.5},
				{"fast link + slow cpu", 0.5, 2},
			}
			const trials = 50
			mech := core.TwoParamStarMechanism{}
			sums := make([]float64, len(lies))
			maxs := make([]float64, len(lies))
			profitable := make([]int, len(lies))
			for k := range maxs {
				maxs[k] = math.Inf(-1)
			}
			for trial := 0; trial < trials; trial++ {
				n := 3 + rng.Intn(4)
				z := make([]float64, n)
				w := make([]float64, n)
				for i := 0; i < n; i++ {
					z[i] = 0.05 + rng.Float64()*0.5
					w[i] = 0.5 + rng.Float64()*4
				}
				truthOut, err := mech.RunTwoParam(w, z, core.TruthfulExec(w), z)
				if err != nil {
					return Result{}, err
				}
				i := rng.Intn(n)
				for k, l := range lies {
					bidZ := append([]float64(nil), z...)
					bidZ[i] *= l.zf
					bidW := append([]float64(nil), w...)
					bidW[i] *= l.wf
					exec := core.TruthfulExec(w)
					if bidW[i] > exec[i] {
						exec[i] = bidW[i]
					}
					devOut, err := mech.RunTwoParam(bidW, bidZ, exec, z)
					if err != nil {
						return Result{}, err
					}
					d := devOut.Utility[i] - truthOut.Utility[i]
					sums[k] += d
					if d > maxs[k] {
						maxs[k] = d
					}
					if d > 1e-9 {
						profitable[k]++
					}
				}
			}
			total := 0
			for k, l := range lies {
				total += profitable[k]
				tbl.AddRow(l.label, f("%+.4f", sums[k]/trials), f("%+.4f", maxs[k]),
					fmt.Sprintf("%d/%d", profitable[k], trials))
			}
			return Result{
				ID: "X15", Title: "two-parameter bids", Table: tbl,
				Notes: fmt.Sprintf("%d profitable lies in total across every sampled deviation, including the slot-buying fast-link claim. The reason is NOT single-dimensionality — it is that both parameters are ex-post observable (the wire exposes the real transfer time, the meter the real speed), so every lie's schedule is realized at the true values and the truthful allocation is the unique realized-makespan minimizer. Nisan–Ronen's multi-parameter impossibilities bite mechanisms without verification; the paper's verification machinery generalizes further than its one-parameter framing suggests", total),
			}, nil
		},
	})
}
