package experiments

import (
	"fmt"
	"strings"

	"dlsbl/internal/agent"
	"dlsbl/internal/dlt"
	"dlsbl/internal/protocol"
)

// complianceTrueW is the processor profile the compliance experiments run
// the full protocol on.
var complianceTrueW = []float64{1.0, 1.5, 2.0, 2.5}

func complianceConfig() protocol.Config {
	return protocol.Config{
		Network: dlt.NCPFE,
		Z:       0.2,
		TrueW:   append([]float64(nil), complianceTrueW...),
		Seed:    11,
		Keys:    expKeys,
	}
}

// behaviorIndex places a behavior on the processor it applies to: the
// originator (index 0 on NCP-FE) for originator-only deviations, a middle
// processor otherwise.
func behaviorIndex(b agent.Behavior) int {
	if b.MisallocateExtraBlocks != 0 || b.TamperBlocks || b.RefuseMediation {
		return 0
	}
	return 1
}

// E8 — Lemma 5.1/Theorem 5.1: compliance maximizes utility; every
// deviation strictly reduces the deviant's utility. Includes the
// fine-magnitude ablation from DESIGN.md §5.
func init() {
	register(Experiment{
		ID:    "E8",
		Title: "Lemma 5.1/Theorem 5.1 — deviation never pays (full protocol, every deviation class)",
		Run: func(seed int64) (Result, error) {
			base, err := protocol.Run(complianceConfig())
			if err != nil {
				return Result{}, err
			}
			tbl := Table{Columns: []string{"behavior", "proc", "completed", "deviant utility", "honest utility", "loss"}}
			profitable := 0
			for _, b := range agent.DeviantCatalog {
				idx := behaviorIndex(b)
				cfg := complianceConfig()
				cfg.Behaviors = make([]agent.Behavior, len(cfg.TrueW))
				cfg.Behaviors[idx] = b
				out, err := protocol.Run(cfg)
				if err != nil {
					return Result{}, err
				}
				honest := base.Utilities[idx]
				dev := out.Utilities[idx]
				if dev > honest+1e-9 {
					profitable++
				}
				tbl.AddRow(b.Name, fmt.Sprintf("P%d", idx+1),
					fmt.Sprintf("%v", out.Completed),
					f("%.4f", dev), f("%.4f", honest), f("%.4f", honest-dev))
			}
			// Fine ablation: the equivocator's utility is −F, so the
			// deterrent scales directly with the fine magnitude.
			var ablation []string
			for _, mult := range []float64{0.5, 1, 2, 4} {
				cfg := complianceConfig()
				cfg.Behaviors = make([]agent.Behavior, len(cfg.TrueW))
				cfg.Behaviors[1] = agent.Equivocator
				cfg.Fine = mult * 10
				out, err := protocol.Run(cfg)
				if err != nil {
					return Result{}, err
				}
				ablation = append(ablation, fmt.Sprintf("F=%.0f→U=%.1f", cfg.Fine, out.Utilities[1]))
			}
			return Result{
				ID: "E8", Title: "compliance pays", Table: tbl,
				Notes: fmt.Sprintf("%d profitable deviations (theorem predicts 0); fine ablation on the equivocator: %s",
					profitable, strings.Join(ablation, ", ")),
			}, nil
		},
	})
}

// E9 — Lemma 5.2: a processor receives a fine only if it deviated.
func init() {
	register(Experiment{
		ID:    "E9",
		Title: "Lemma 5.2 — fines hit only deviants (and Corollary 5.1: no rewards without a cheater)",
		Run: func(seed int64) (Result, error) {
			tbl := Table{Columns: []string{"scenario", "fined", "innocent fined", "rewards without cheater"}}
			wrongful := 0
			// Honest baseline: nobody fined, nobody rewarded.
			base, err := protocol.Run(complianceConfig())
			if err != nil {
				return Result{}, err
			}
			var baseRewards float64
			for _, r := range base.Rewards {
				baseRewards += r
			}
			tbl.AddRow("all-honest", "-", "0", f("%.4f", baseRewards))
			if baseRewards != 0 {
				wrongful++
			}
			for _, b := range agent.DeviantCatalog {
				idx := behaviorIndex(b)
				cfg := complianceConfig()
				cfg.Behaviors = make([]agent.Behavior, len(cfg.TrueW))
				cfg.Behaviors[idx] = b
				out, err := protocol.Run(cfg)
				if err != nil {
					return Result{}, err
				}
				var fined []string
				innocentFined := 0
				for i, fAmt := range out.Fines {
					if fAmt > 0 {
						fined = append(fined, fmt.Sprintf("P%d", i+1))
						if i != idx {
							innocentFined++
							wrongful++
						}
					}
				}
				label := strings.Join(fined, "+")
				if label == "" {
					label = "none"
				}
				tbl.AddRow(b.Name, label, fmt.Sprintf("%d", innocentFined), "-")
			}
			return Result{
				ID: "E9", Title: "fines only for deviants", Table: tbl,
				Notes: fmt.Sprintf("%d wrongful outcomes (lemma predicts 0); note the cooperative short-shipper is remediated without a fine, exactly as Section 4 specifies", wrongful),
			}, nil
		},
	})
}
