package experiments

import (
	"fmt"
	"math/rand"

	"dlsbl/internal/dlt"
	"dlsbl/internal/protocol"
)

// X11 — the price of removing the control processor: the same workload
// run through the trusted-center DLS-BL protocol (the authors' earlier
// system) and through DLS-BL-NCP. Payments and utilities are identical by
// construction; what decentralization costs is control traffic (Θ(m) vs
// Θ(m²)) — and what it buys is the removal of the single trusted party.
func init() {
	register(Experiment{
		ID:    "X11",
		Title: "Extension: the price of decentralization — trusted-center DLS-BL vs DLS-BL-NCP",
		Run: func(seed int64) (Result, error) {
			rng := rand.New(rand.NewSource(seed))
			tbl := Table{Columns: []string{"m", "units (CP, trusted)", "units (NCP)", "overhead ×", "|ΔQ| max"}}
			for _, m := range []int{4, 8, 16, 32, 64} {
				w := make([]float64, m)
				for i := range w {
					w[i] = 0.5 + rng.Float64()*7.5
				}
				cp, err := protocol.RunCP(protocol.Config{
					Network: dlt.CP, Z: 0.1, TrueW: w, Seed: seed, NBlocks: 8 * m, Keys: expKeys,
				})
				if err != nil {
					return Result{}, err
				}
				ncp, err := protocol.Run(protocol.Config{
					Network: dlt.NCPFE, Z: 0.1, TrueW: w, Seed: seed, NBlocks: 8 * m, Keys: expKeys,
				})
				if err != nil {
					return Result{}, err
				}
				// The two networks price slightly different schedules (the
				// CP center cannot compute), so compare the payment
				// VECTOR STRUCTURE on the same network: rerun the NCP
				// mechanism centrally… simplest faithful check: both runs
				// pay every processor its marginal contribution, so the
				// per-processor utility ordering matches the speed
				// ordering. Report the max payment difference only as
				// context.
				maxDelta := 0.0
				for i := range w {
					d := ncp.Payments[i] - cp.Payments[i]
					if d < 0 {
						d = -d
					}
					if d > maxDelta {
						maxDelta = d
					}
				}
				tbl.AddRow(fmt.Sprintf("%d", m),
					fmt.Sprintf("%d", cp.BusStats.Units),
					fmt.Sprintf("%d", ncp.BusStats.Units),
					f("%.1f", float64(ncp.BusStats.Units)/float64(cp.BusStats.Units)),
					f("%.4f", maxDelta))
			}
			return Result{
				ID: "X11", Title: "price of decentralization", Table: tbl,
				Notes: "the trusted-center protocol moves 2m control units; DLS-BL-NCP moves m²+2m — overhead ×(m+2)/2, i.e. ~33× at m=64. That traffic buys the elimination of the trusted control processor: every honesty property then rests on mutual verification plus a passive referee instead of on one party's goodwill. (Payments differ across the two columns only because the network classes differ: the CP center cannot compute, the NCP-FE originator can.)",
			}, nil
		},
	})
}
