package experiments

import (
	"fmt"

	"dlsbl/internal/core"
	"dlsbl/internal/dlt"
	"dlsbl/internal/dynamics"
)

// X10 — best-response dynamics: do adaptive agents actually FIND the
// truthful equilibrium the theorems promise, and what happens to the
// ecosystem when verification is removed?
func init() {
	register(Experiment{
		ID:    "X10",
		Title: "Extension: best-response dynamics — truthful convergence with the meter, race to the bottom without",
		Run: func(seed int64) (Result, error) {
			tbl := Table{Columns: []string{"rule", "sweep", "mean |b/t − 1|", "truthful bids", "mean slack w̃/t"}}
			trueW := []float64{1, 1.5, 2, 2.5, 3}
			m := len(trueW)
			base := dynamics.Config{
				Network:   dlt.NCPFE,
				Z:         0.2,
				TrueW:     trueW,
				BidGrid:   []float64{0.5, 0.75, 1, 1.25, 1.5, 2},
				SlackGrid: []float64{2, 1.5, 1.25, 1}, // laziest first: ties expose indifference
				Rounds:    4 * m,
				Seed:      seed,
			}
			for _, rule := range []core.PaymentRule{core.WithVerification, core.WithoutVerification} {
				cfg := base
				cfg.Rule = rule
				tr, err := dynamics.Run(cfg)
				if err != nil {
					return Result{}, err
				}
				for sweep := 0; sweep < 4; sweep++ {
					s := tr.Stats[(sweep+1)*m-1] // end of each full sweep
					tbl.AddRow(rule.String(), fmt.Sprintf("%d", sweep+1),
						f("%.4f", s.MeanBidDev),
						fmt.Sprintf("%d/%d", s.TruthfulBids, m),
						f("%.3f", s.MeanSlack))
				}
			}
			return Result{
				ID: "X10", Title: "best-response dynamics", Table: tbl,
				Notes: "with verification, one sweep of best responses lands every agent at (b/t, w̃/t) = (1, 1) and stays there — the truthful profile is the absorbing fixed point, exactly as dominant-strategy incentive compatibility predicts. Without verification the ecosystem COLLAPSES: every agent races to the lowest bid factor on the grid (an unexposed speed lie inflates the bonus) and parks execution at the lazy cap. The meter is not a refinement — it is what keeps the whole market honest",
			}, nil
		},
	})
}
