package experiments

import (
	"fmt"
	"math"
	"math/rand"

	"dlsbl/internal/core"
)

// X7 — the DLS-BL mechanism on the daisy chain. The interesting modeling
// point (documented on core.LinearMechanism and discovered by this very
// experiment's failing first draft): the bonus baseline T_{-i} must treat
// a non-participant as a store-and-forward RELAY that still carries the
// tail across its hop. Splicing the node out of the chain instead makes
// slow processors look harmful merely for existing, and voluntary
// participation fails with measurably negative truthful utilities.
func init() {
	register(Experiment{
		ID:    "X7",
		Title: "Extension: DLS-BL on daisy chains — relay-baseline bonuses keep the mechanism sound",
		Run: func(seed int64) (Result, error) {
			rng := rand.New(rand.NewSource(seed))
			ratios := []float64{0.25, 0.5, 1.0, 1.5, 2.0, 4.0}
			tbl := Table{Columns: []string{"bid ratio b/t", "mean U/U_truth", "max U/U_truth"}}
			const trials = 60
			sums := make([]float64, len(ratios))
			maxs := make([]float64, len(ratios))
			for i := range maxs {
				maxs[i] = math.Inf(-1)
			}
			violations := 0
			minTruthU := math.Inf(1)
			for trial := 0; trial < trials; trial++ {
				n := 2 + rng.Intn(6)
				w := make([]float64, n)
				for i := range w {
					w[i] = 0.5 + rng.Float64()*7.5
				}
				mech := core.LinearMechanism{Z: 0.02 + rng.Float64()*0.4}
				i := rng.Intn(n)
				truthOut, err := mech.Run(w, core.TruthfulExec(w))
				if err != nil {
					return Result{}, err
				}
				truthU := truthOut.Utility[i]
				for _, u := range truthOut.Utility {
					if u < minTruthU {
						minTruthU = u
					}
				}
				for k, ratio := range ratios {
					bids := append([]float64(nil), w...)
					bids[i] = w[i] * ratio
					exec := core.TruthfulExec(w)
					exec[i] = math.Max(bids[i], w[i])
					devOut, err := mech.Run(bids, exec)
					if err != nil {
						return Result{}, err
					}
					norm := devOut.Utility[i] / truthU
					sums[k] += norm
					if norm > maxs[k] {
						maxs[k] = norm
					}
					if ratio != 1 && devOut.Utility[i] > truthU+1e-9 {
						violations++
					}
				}
			}
			for k, ratio := range ratios {
				tbl.AddRow(f("%.2f", ratio), f("%.4f", sums[k]/trials), f("%.4f", maxs[k]))
			}
			return Result{
				ID: "X7", Title: "chain mechanism", Table: tbl,
				Notes: fmt.Sprintf("%d strategyproofness violations across %d random chains (theory predicts 0); minimum truthful utility %.6f ≥ 0 — but ONLY with the relay baseline: splicing non-participants out of the chain produces negative truthful utilities (≈−0.03 observed during development), a genuine modeling trap for distributed mechanisms on multi-hop topologies", violations, trials, minTruthU),
			}, nil
		},
	})
}
