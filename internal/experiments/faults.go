package experiments

import (
	"fmt"
	"math/rand"
	"runtime"
	"sync"

	"dlsbl/internal/bus"
	"dlsbl/internal/dlt"
	"dlsbl/internal/protocol"
	"dlsbl/internal/stats"
)

// X16 — the protocol without its reliability assumption: DLS-BL-NCP is
// specified over a perfectly reliable atomic-broadcast bus; this
// experiment degrades the link (drop probability p, duplication p/2,
// data-plane jitter p) and measures what the retry/eviction machinery
// delivers in exchange. A deliberately tight retry budget (3 attempts)
// makes the failure modes visible at moderate p: runs either complete
// fault-free-equivalent, complete after evicting stragglers (Theorem 2.2
// keeps the reduced allocation optimal), or abort.
func init() {
	register(Experiment{
		ID:    "X16",
		Title: "Extension: unreliable bus — completion, retransmissions and makespan inflation vs drop probability",
		Run: func(seed int64) (Result, error) {
			const (
				m      = 6
				trials = 10
			)
			rng := rand.New(rand.NewSource(seed))
			w := make([]float64, m)
			for i := range w {
				w[i] = 0.5 + rng.Float64()*7.5
			}
			base := protocol.Config{Network: dlt.NCPFE, Z: 0.1, TrueW: w, Seed: seed, NBlocks: 8 * m, Keys: expKeys}
			reliable, err := protocol.Run(base)
			if err != nil {
				return Result{}, err
			}

			// Every (p, trial) cell is an independent seeded protocol run —
			// embarrassingly parallel. A bounded worker pool executes them
			// out of order into an indexed slice; aggregation below then
			// walks the slice in the original loop order, so the table
			// (including float accumulation order) is bit-identical to the
			// sequential sweep.
			ps := []float64{0, 0.1, 0.2, 0.3, 0.4}
			type cell struct {
				out *protocol.Outcome // nil on abort
			}
			cells := make([]cell, len(ps)*trials)
			jobs := make(chan int, len(cells))
			for i := range cells {
				jobs <- i
			}
			close(jobs)
			var wg sync.WaitGroup
			for w := 0; w < runtime.GOMAXPROCS(0); w++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					for i := range jobs {
						p, trial := ps[i/trials], i%trials
						cfg := base
						cfg.Faults = &bus.FaultPlan{
							Seed:      seed + int64(trial)*101,
							Drop:      p,
							Duplicate: p / 2,
							JitterMax: p,
						}
						cfg.Retry = protocol.RetryPolicy{MaxAttempts: 3}
						if out, err := protocol.Run(cfg); err == nil {
							cells[i] = cell{out: out}
						}
					}
				}()
			}
			wg.Wait()

			tbl := Table{Columns: []string{"drop p", "completed", "with evictions", "aborted", "retransmits mean", "retransmits p95", "discards", "makespan ×"}}
			for pi, p := range ps {
				var completed, evicted, aborted, discards int
				var retx, spans []float64
				for trial := 0; trial < trials; trial++ {
					out := cells[pi*trials+trial].out
					switch {
					case out == nil:
						aborted++
						continue
					case !out.Completed:
						// A verdict cannot fire here (all honest); defensive.
						aborted++
						continue
					case len(out.Evictions) > 0:
						evicted++
					default:
						completed++
						// Makespan inflation is only comparable on the full
						// processor set.
						spans = append(spans, out.Makespan/reliable.Makespan)
					}
					retx = append(retx, float64(out.Fault.Retransmits))
					discards += out.Fault.DupDiscards + out.Fault.CorruptDiscards
				}
				// Empty samples print as a dash, not Mean()'s zero — a
				// "makespan × 0.000" row would read as impossibly good
				// rather than "no full-set completions at this p".
				dashOr := func(xs []float64, format string, v float64) string {
					if len(xs) == 0 {
						return "—"
					}
					return f(format, v)
				}
				tbl.AddRow(f("%.2f", p),
					fmt.Sprintf("%d/%d", completed, trials),
					fmt.Sprintf("%d", evicted),
					fmt.Sprintf("%d", aborted),
					dashOr(retx, "%.1f", stats.Mean(retx)),
					dashOr(retx, "%.1f", stats.Quantile(retx, 0.95)),
					fmt.Sprintf("%d", discards),
					dashOr(spans, "%.3f", stats.Mean(spans)))
			}
			return Result{
				ID: "X16", Title: "unreliable bus", Table: tbl,
				Notes: "three regimes as the link degrades: at low p every run completes with the fault-free payments (retransmission absorbs the loss invisibly — the economics never see the link); at moderate p some runs finish only by evicting unreachable processors, re-solving the allocation over the survivors; at high p runs abort when a proven-live party later exceeds the 3-attempt budget. Makespan inflation tracks the data-plane jitter (≈ +p/2 per transfer on average), not the control-plane retries, which occupy no bus time in this model.",
			}, nil
		},
	})
}
