package experiments

import (
	"fmt"

	"dlsbl/internal/dlt"
	"dlsbl/internal/gantt"
)

// Figure experiments E1–E3 reproduce the paper's three execution diagrams
// on a canonical instance: m = 5 heterogeneous processors, z = 0.2. The
// diagrams show the back-to-back communication spans on the one-port bus
// and the equal finishing times of Theorem 2.1.

// FigureInstance is the canonical instance the figure experiments render.
func FigureInstance(net dlt.Network) dlt.Instance {
	return dlt.Instance{Network: net, Z: 0.2, W: []float64{1, 1.5, 2, 2.5, 3}}
}

func figureExperiment(id string, net dlt.Network, paperFig int) Experiment {
	return Experiment{
		ID:    id,
		Title: fmt.Sprintf("Figure %d — execution diagram on a %s bus network", paperFig, net),
		Run: func(seed int64) (Result, error) {
			in := FigureInstance(net)
			a, err := dlt.Optimal(in)
			if err != nil {
				return Result{}, err
			}
			fig, err := gantt.Figure(in, gantt.Options{Width: 72, ShowBus: true, ShowTimes: true})
			if err != nil {
				return Result{}, err
			}
			ft, err := dlt.FinishTimes(in, a)
			if err != nil {
				return Result{}, err
			}
			tbl := Table{Columns: []string{"proc", "w_i", "alpha_i", "T_i"}}
			for i := range in.W {
				tbl.AddRow(
					fmt.Sprintf("P%d", i+1),
					f("%.3g", in.W[i]),
					f("%.6f", a[i]),
					f("%.6f", ft[i]),
				)
			}
			spread, err := dlt.FinishSpread(in, a)
			if err != nil {
				return Result{}, err
			}
			return Result{
				ID:     id,
				Title:  fmt.Sprintf("Figure %d (%s)", paperFig, net),
				Table:  tbl,
				Figure: fig,
				Notes: fmt.Sprintf("finish-time spread %.2e (Theorem 2.1: all equal); "+
					"originator index %d", spread, net.Originator(len(in.W))),
			}, nil
		},
	}
}

func init() {
	register(figureExperiment("E1", dlt.CP, 1))
	register(figureExperiment("E2", dlt.NCPFE, 2))
	register(figureExperiment("E3", dlt.NCPNFE, 3))
}
