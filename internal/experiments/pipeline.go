package experiments

import (
	"fmt"
	"math/rand"

	"dlsbl/internal/dlt"
	"dlsbl/internal/pipeline"
	"dlsbl/internal/protocol"
)

// X18 — pipelined multi-load scheduling: installment rounds plus
// cross-job packing against the FIFO runner. The FIFO baseline serves D
// queued loads back to back, each a single round at the single-round
// optimal split; the pipelined scheduler splits each load into R
// installments under the throughput-balanced allocation
// (dlt.PipelinedAllocation) and packs the D loads' installment waves into
// one shared bus schedule (pipeline.Pack).
//
// The R=1 rows double as the negative control that motivates the
// balanced allocation: at the single-round equal-finish optimum the
// NCP-FE originator computes w₀·α₀ = T for the whole makespan, so a
// schedule of such loads keeps one processor saturated per load and
// packing cannot beat FIFO (speedup pinned ≈ 1). Splitting into
// installments under the balanced split frees that bottleneck, and the
// speedup at depth D ≥ 4 clears 1.3× on the default m=16 pool — the
// figure BENCH_PIPELINE.json records.
//
// The last row replays the D=4, R=4 cell end to end through the live
// protocol — a BidSession serving 4 loads as signed installment
// sub-rounds (pipeline.RunLoad), packed from their realized outcomes —
// to confirm the virtual-time numbers survive contact with the mechanism.
func init() {
	register(Experiment{
		ID:    "X18",
		Title: "Extension: pipelined multi-load scheduling — installment rounds + cross-job packing vs FIFO",
		Run: func(seed int64) (Result, error) {
			const m, z = 16, 0.1
			rng := rand.New(rand.NewSource(seed))
			w := make([]float64, m)
			for i := range w {
				w[i] = 1 + rng.Float64()
			}
			in := dlt.Instance{Network: dlt.NCPFE, Z: z, W: w}

			tbl := Table{Columns: []string{"D", "R", "policy", "FIFO total", "packed makespan", "speedup"}}
			var best float64
			for _, d := range []int{1, 2, 4, 8} {
				for _, r := range []int{1, 2, 4} {
					plan, err := packedPlan(in, d, r, dlt.GeometricRounds)
					if err != nil {
						return Result{}, err
					}
					s := plan.Speedup()
					if d >= 4 && s > best {
						best = s
					}
					tbl.AddRow(
						fmt.Sprintf("%d", d), fmt.Sprintf("%d", r), rowPolicy(r),
						f("%.4f", plan.FIFOTotal), f("%.4f", plan.Makespan), f("%.3f", s))
				}
			}

			live, err := livePipelineSpeedup(w, z, seed, 4, 4)
			if err != nil {
				return Result{}, err
			}
			tbl.AddRow("4", "4", "geometric (live protocol)", "", "", f("%.3f", live))

			notes := fmt.Sprintf(
				"m=%d, z=%.2g. R=1 rows are the saturation control: single-round optimal splits pin speedup at 1. "+
					"Best packed speedup at D>=4: %.3f (target >= 1.3); live-protocol replay of D=4,R=4: %.3f.",
				m, z, best, live)
			return Result{ID: "X18", Title: "pipelined multi-load scheduling", Table: tbl, Notes: notes}, nil
		},
	})
}

func rowPolicy(r int) string {
	if r == 1 {
		return "single (control)"
	}
	return "geometric"
}

// packedPlan packs d identical loads on the pool, each in r installments:
// the single-round optimal allocation for r=1 (the FIFO runner's rule),
// the throughput-balanced allocation otherwise.
func packedPlan(in dlt.Instance, d, r int, policy dlt.RoundPolicy) (pipeline.Plan, error) {
	var alloc dlt.Allocation
	var err error
	if r == 1 {
		alloc, err = dlt.Optimal(in)
	} else {
		alloc, err = dlt.PipelinedAllocation(in)
	}
	if err != nil {
		return pipeline.Plan{}, err
	}
	jobs := make([]pipeline.Job, d)
	for j := range jobs {
		jobs[j] = pipeline.Job{
			ID:     fmt.Sprintf("job%d", j+1),
			Exec:   append([]float64(nil), in.W...),
			Alloc:  alloc,
			Rounds: r,
			Policy: policy,
		}
	}
	return pipeline.Pack(in.Network, in.Z, jobs)
}

// livePipelineSpeedup replays one packed cell through the live protocol:
// a BidSession serves d loads as signed installment sub-rounds, and the
// packer runs on the realized outcomes (realized rates and allocations,
// not the planned ones).
func livePipelineSpeedup(w []float64, z float64, seed int64, d, r int) (float64, error) {
	sess, err := protocol.NewBidSession(protocol.Config{
		Network: dlt.NCPFE, Z: z, TrueW: w, Keys: expKeys,
	})
	if err != nil {
		return 0, err
	}
	jobs := make([]pipeline.Job, d)
	for j := range jobs {
		out, err := pipeline.RunLoad(sess, pipeline.Load{
			Job:    protocol.JobConfig{Seed: seed + int64(j), NBlocks: 8 * len(w)},
			Rounds: r,
			Policy: dlt.GeometricRounds,
		})
		if err != nil {
			return 0, err
		}
		if !out.Completed {
			return 0, fmt.Errorf("experiments: live load %d terminated in %s", j+1, out.TerminatedIn)
		}
		jobs[j], err = pipeline.JobFromOutcome(fmt.Sprintf("live%d", j+1), out, r, dlt.GeometricRounds)
		if err != nil {
			return 0, err
		}
	}
	plan, err := pipeline.Pack(dlt.NCPFE, z, jobs)
	if err != nil {
		return 0, err
	}
	return plan.Speedup(), nil
}
