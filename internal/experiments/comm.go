package experiments

import (
	"fmt"
	"math/rand"

	"dlsbl/internal/dlt"
	"dlsbl/internal/protocol"
	"dlsbl/internal/stats"
)

// CommSizes are the processor counts swept by E10.
var CommSizes = []int{2, 4, 8, 16, 32, 64, 128}

// E10 — Theorem 5.4: the communication complexity of DLS-BL-NCP is Θ(m²),
// dominated by the Computing Payments phase (m vectors of size m).
func init() {
	register(Experiment{
		ID:    "E10",
		Title: "Theorem 5.4 — communication complexity is Θ(m²)",
		Run: func(seed int64) (Result, error) {
			rng := rand.New(rand.NewSource(seed))
			tbl := Table{Columns: []string{"m", "messages", "units", "units/m^2"}}
			var ms, units []float64
			for _, m := range CommSizes {
				w := make([]float64, m)
				for i := range w {
					w[i] = 0.5 + rng.Float64()*7.5
				}
				out, err := protocol.Run(protocol.Config{
					Network: dlt.NCPFE,
					Z:       0.1,
					TrueW:   w,
					Seed:    seed + int64(m),
					NBlocks: 8 * m,
					Keys:    expKeys,
				})
				if err != nil {
					return Result{}, err
				}
				if !out.Completed {
					return Result{}, fmt.Errorf("E10: honest run with m=%d terminated", m)
				}
				u := float64(out.BusStats.Units)
				ms = append(ms, float64(m))
				units = append(units, u)
				tbl.AddRow(fmt.Sprintf("%d", m),
					fmt.Sprintf("%d", out.BusStats.Messages),
					fmt.Sprintf("%d", out.BusStats.Units),
					f("%.3f", u/float64(m*m)))
			}
			p, c, r2, err := stats.FitPowerLaw(ms, units)
			if err != nil {
				return Result{}, err
			}
			return Result{
				ID: "E10", Title: "Θ(m²) communication", Table: tbl,
				Notes: fmt.Sprintf("power-law fit: units ≈ %.3f·m^%.3f (R²=%.5f) — exponent ≈ 2, matching Theorem 5.4; the payments phase (m vectors of size m) dominates", c, p, r2),
			}, nil
		},
	})
}
