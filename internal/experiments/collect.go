package experiments

import (
	"math/rand"

	"dlsbl/internal/dlt"
)

// X8 — result collection: the follow-up problem the DLT literature the
// paper cites ([2]) leaves open. Results of size δ·α_i must return to the
// originator over the same one-port bus. Measured: FIFO vs LIFO return
// order, and how much retuning the load split for the collection-aware
// makespan buys over the distribution-only optimum.
func init() {
	register(Experiment{
		ID:    "X8",
		Title: "Extension: result collection — FIFO vs LIFO returns, and retuned splits",
		Run: func(seed int64) (Result, error) {
			rng := rand.New(rand.NewSource(seed))
			tbl := Table{Columns: []string{"delta", "T(no collect)", "T(equal-finish α)", "T(tuned, FIFO)", "T(tuned, LIFO)", "tuned LIFO/FIFO", "tuning gain"}}
			const m = 6
			const trials = 15
			for _, delta := range []float64{0.1, 0.25, 0.5, 1.0, 2.0} {
				var sumPlain, sumEqual, sumFIFO, sumLIFO float64
				for trial := 0; trial < trials; trial++ {
					c := dlt.CollectInstance{
						Instance: dlt.RandomInstance(rng, dlt.CP, m, 0.5, 4, 0.1, 0.4),
						Delta:    delta,
					}
					a, err := dlt.Optimal(c.Instance)
					if err != nil {
						return Result{}, err
					}
					plain, err := dlt.Makespan(c.Instance, a)
					if err != nil {
						return Result{}, err
					}
					// On the equal-finish split every result is ready at
					// the same instant, so FIFO = LIFO exactly; one
					// number suffices.
					equal, err := dlt.CollectMakespan(c, a, dlt.FIFO)
					if err != nil {
						return Result{}, err
					}
					_, fifoTuned, err := dlt.TuneCollection(c, a, dlt.FIFO, 300, rng)
					if err != nil {
						return Result{}, err
					}
					_, lifoTuned, err := dlt.TuneCollection(c, a, dlt.LIFO, 300, rng)
					if err != nil {
						return Result{}, err
					}
					sumPlain += plain
					sumEqual += equal
					sumFIFO += fifoTuned
					sumLIFO += lifoTuned
				}
				tbl.AddRow(f("%.2f", delta),
					f("%.4f", sumPlain/trials), f("%.4f", sumEqual/trials),
					f("%.4f", sumFIFO/trials), f("%.4f", sumLIFO/trials),
					f("%.3f", sumLIFO/sumFIFO),
					f("%.1f%%", 100*(1-sumFIFO/sumEqual)))
			}
			return Result{
				ID: "X8", Title: "result collection", Table: tbl,
				Notes: "on the equal-finish split all results are ready simultaneously, so the return order is irrelevant there (FIFO = LIFO exactly — itself a noteworthy structural fact); once the split is retuned for the collection-aware objective, staggered finishes emerge, returns overlap late computations, and the tuned schedules beat the equal-finish one by up to ~15% at heavy δ; tuned FIFO consistently beats tuned LIFO (by up to ~11%) because early finishers drain the bus while late ones still compute",
			}, nil
		},
	})
}
