package experiments

import (
	"fmt"
	"math/rand"

	"dlsbl/internal/dlt"
)

// X9 — multi-level trees via the equivalent-processor reduction: when
// does organizing the same workers hierarchically beat a flat star? A
// flat root must push every byte through its own one-port; subtree heads
// parallelize distribution at the price of an extra store-and-forward
// hop per level.
func init() {
	register(Experiment{
		ID:    "X9",
		Title: "Extension: tree networks — flat star vs two-level hierarchy over the same workers",
		Run: func(seed int64) (Result, error) {
			rng := rand.New(rand.NewSource(seed))
			tbl := Table{Columns: []string{"scenario", "workers", "z(root)", "z(local)", "T(flat)", "T(2-level, k=4)", "tree/flat", "winner"}}
			const heads = 4
			const trials = 15
			run := func(scenario string, workers int, zRoot, zLocal, zFlat float64) error {
				var sumFlat, sumTree float64
				for trial := 0; trial < trials; trial++ {
					w := make([]float64, workers)
					for i := range w {
						w[i] = 0.5 + rng.Float64()*3.5
					}
					rootW := 0.5 + rng.Float64()*3.5

					// Flat: the root serves every worker directly over
					// the flat-configuration link.
					flat := &dlt.Tree{W: rootW}
					for i := 0; i < workers; i++ {
						flat.Children = append(flat.Children, &dlt.Tree{W: w[i], Z: zFlat})
					}
					_, flatMS, err := dlt.OptimalTree(flat)
					if err != nil {
						return err
					}

					// Two levels: 4 heads over the root-level link, each
					// redistributing to its group over the local link.
					tree := &dlt.Tree{W: rootW}
					per := workers / heads
					for h := 0; h < heads; h++ {
						head := &dlt.Tree{W: w[h*per], Z: zRoot}
						for _, wi := range w[h*per+1 : (h+1)*per] {
							head.Children = append(head.Children, &dlt.Tree{W: wi, Z: zLocal})
						}
						tree.Children = append(tree.Children, head)
					}
					_, treeMS, err := dlt.OptimalTree(tree)
					if err != nil {
						return err
					}
					sumFlat += flatMS
					sumTree += treeMS
				}
				winner := "flat"
				if sumTree < sumFlat {
					winner = "tree"
				}
				tbl.AddRow(scenario, fmt.Sprintf("%d", workers), f("%.2f", zRoot), f("%.3f", zLocal),
					f("%.4f", sumFlat/trials), f("%.4f", sumTree/trials),
					f("%.3f", sumTree/sumFlat), winner)
				return nil
			}
			for _, workers := range []int{16, 32, 64} {
				for _, z := range []float64{0.02, 0.1, 0.3} {
					if err := run("uniform", workers, z, z, z); err != nil {
						return Result{}, err
					}
				}
			}
			// Routed: a "direct" root→leaf path physically traverses both
			// the WAN hop and the local hop (zFlat = zRoot + zLocal), so
			// the flat root's port is busy for the FULL path time per
			// byte, while the tree pays only the WAN hop at the root and
			// parallelizes the local hops across the heads' ports.
			for _, workers := range []int{16, 32, 64} {
				for _, zRoot := range []float64{0.1, 0.3} {
					zLocal := zRoot / 2
					if err := run("routed", workers, zRoot, zLocal, zRoot+zLocal); err != nil {
						return Result{}, err
					}
				}
			}
			return Result{
				ID: "X9", Title: "tree networks", Table: tbl,
				Notes: "the reduction collapses each subtree into an equivalent processor (self-similarity verified in tests: subtree makespan is exactly linear in load). A clean negative result first: with UNIFORM links — even with cheap local links — the flat star ALWAYS wins, because the root's one port must carry every byte once in either configuration and extra levels only add store-and-forward latency. Hierarchy pays exactly when flat direct links are fiction: in the routed scenario (a direct root→leaf path occupies the root's port for the full two-hop time) the tree wins consistently, since the heads' ports absorb the second hop in parallel",
			}, nil
		},
	})
}
