package experiments

import (
	"math/rand"

	"dlsbl/internal/core"
	"dlsbl/internal/dlt"
)

// X13 — costly verification: the paper assumes the referee reads a
// tamper-proof meter on EVERY processor in EVERY run. If each read costs
// something, the natural relaxation is probabilistic auditing: with
// probability p the meter is read (the bonus is computed at the observed
// w̃ — the paper's rule), otherwise it is not (the bonus trusts the bid —
// the E12 ablation). The expected utility of slacking interpolates the
// two, so there is a THRESHOLD audit rate p* above which full-speed
// execution dominates. Adding a fine F on a caught slacker pushes p* down
// as p* ≈ gap_unaudited / (gap_unaudited + gap_audited + F).
func init() {
	register(Experiment{
		ID:    "X13",
		Title: "Extension: costly verification — the audit rate that keeps execution honest",
		Run: func(seed int64) (Result, error) {
			rng := rand.New(rand.NewSource(seed))
			tbl := Table{Columns: []string{"deviation", "ΔU audited", "ΔU unaudited", "p* (F=0)", "p* (F=1)", "p* (F=5)"}}
			const trials = 30

			type deviation struct {
				label string
				bid   float64 // bid factor b/t
				slack float64 // execution factor w̃/t (clamped below at 1)
			}
			devs := []deviation{
				{"slack 1.25×", 1, 1.25},
				{"slack 2×", 1, 2},
				{"underbid 0.9×", 0.9, 1},
				{"underbid 0.75×", 0.75, 1},
				{"underbid 0.5×", 0.5, 1},
				{"underbid 0.5× + slack 1.5×", 0.5, 1.5},
			}
			sumAud := make([]float64, len(devs))
			sumUnaud := make([]float64, len(devs))
			for trial := 0; trial < trials; trial++ {
				in := core.RegimeSafeInstance(rng, dlt.NCPFE, 6)
				mech := core.Mechanism{Network: dlt.NCPFE, Z: in.Z}
				i := rng.Intn(in.M())
				truthAud, err := mech.RunWithRule(in.W, core.TruthfulExec(in.W), core.WithVerification)
				if err != nil {
					return Result{}, err
				}
				truthUnaud, err := mech.RunWithRule(in.W, core.TruthfulExec(in.W), core.WithoutVerification)
				if err != nil {
					return Result{}, err
				}
				for k, d := range devs {
					bids := append([]float64(nil), in.W...)
					bids[i] = in.W[i] * d.bid
					exec := core.TruthfulExec(in.W)
					if s := in.W[i] * d.slack; s > exec[i] {
						exec[i] = s
					}
					aud, err := mech.RunWithRule(bids, exec, core.WithVerification)
					if err != nil {
						return Result{}, err
					}
					unaud, err := mech.RunWithRule(bids, exec, core.WithoutVerification)
					if err != nil {
						return Result{}, err
					}
					sumAud[k] += aud.Utility[i] - truthAud.Utility[i]
					sumUnaud[k] += unaud.Utility[i] - truthUnaud.Utility[i]
				}
			}
			for k, d := range devs {
				gainUnaud := sumUnaud[k] / trials
				lossAud := -(sumAud[k] / trials)
				// Deviating pays in expectation iff
				// (1−p)·gainUnaud − p·(lossAud + F) > 0 ⇒
				// p* = gainUnaud / (gainUnaud + lossAud + F).
				pStar := func(F float64) string {
					if gainUnaud <= 1e-12 {
						return "0 (never pays)"
					}
					return f("%.4f", gainUnaud/(gainUnaud+lossAud+F))
				}
				tbl.AddRow(d.label,
					f("%+.4f", sumAud[k]/trials),
					f("%+.4f", gainUnaud),
					pStar(0), pStar(1), pStar(5))
			}
			return Result{
				ID: "X13", Title: "costly verification", Table: tbl,
				Notes: "pure slacking is utility-NEUTRAL without an audit (the compensation reimburses the inflated cost and the bonus never sees it), so any positive audit rate deters it. The binding deviation is UNDERBIDDING: unaudited, claiming extra speed profits (positive ΔU), so honest bidding needs audits at rate p ≥ p* = gain/(gain + audited-loss + F) — measured around 14% with no fine, and under 5% once a caught lie costs F=1–5. The paper's always-on tamper-proof meter is the p=1 corner; even occasional audits backed by modest fines achieve the same deterrence",
			}, nil
		},
	})
}
