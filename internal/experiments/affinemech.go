package experiments

import (
	"fmt"
	"math"
	"math/rand"

	"dlsbl/internal/core"
	"dlsbl/internal/dlt"
)

// X12 — the mechanism under affine costs: fixed overheads introduce a
// participation threshold into the allocation rule, a classic danger zone
// for incentives. Measured: strategyproofness and voluntary participation
// across random overheads and deviations, including agents near and
// beyond the participation boundary.
func init() {
	register(Experiment{
		ID:    "X12",
		Title: "Extension: DLS-BL under affine costs — incentives survive the participation threshold",
		Run: func(seed int64) (Result, error) {
			rng := rand.New(rand.NewSource(seed))
			tbl := Table{Columns: []string{"Scm", "Scp", "mean participants (m=6)", "SP violations", "VP violations", "min truthful U"}}
			totalSP, totalVP := 0, 0
			for _, scm := range []float64{0, 0.1, 0.3, 0.8} {
				for _, scp := range []float64{0, 0.2} {
					const trials = 25
					spViol, vpViol := 0, 0
					sumParticipants := 0
					minU := math.Inf(1)
					for trial := 0; trial < trials; trial++ {
						in := core.RegimeSafeInstance(rng, dlt.CP, 6)
						mech := core.AffineMechanism{Network: dlt.CP, Z: in.Z, Scm: scm, Scp: scp}
						truthOut, err := mech.Run(in.W, core.TruthfulExec(in.W))
						if err != nil {
							return Result{}, err
						}
						for _, a := range truthOut.Alloc {
							if a > 1e-12 {
								sumParticipants++
							}
						}
						for _, u := range truthOut.Utility {
							if u < minU {
								minU = u
							}
							if u < -1e-9 {
								vpViol++
							}
						}
						i := rng.Intn(in.M())
						for k := 0; k < 5; k++ {
							ratio := 0.25 + rng.Float64()*3.75
							bids := append([]float64(nil), in.W...)
							bids[i] = in.W[i] * ratio
							exec := core.TruthfulExec(in.W)
							exec[i] = math.Max(bids[i], in.W[i])
							devOut, err := mech.Run(bids, exec)
							if err != nil {
								return Result{}, err
							}
							if devOut.Utility[i] > truthOut.Utility[i]+1e-9 {
								spViol++
							}
						}
					}
					totalSP += spViol
					totalVP += vpViol
					tbl.AddRow(f("%.1f", scm), f("%.1f", scp),
						f("%.2f", float64(sumParticipants)/trials),
						fmt.Sprintf("%d", spViol), fmt.Sprintf("%d", vpViol),
						f("%.6f", minU))
				}
			}
			return Result{
				ID: "X12", Title: "affine mechanism", Table: tbl,
				Notes: fmt.Sprintf("%d strategyproofness and %d voluntary-participation violations in total (theory hopes for 0/0) — but ONLY after two fixes this experiment forced: (1) the allocation must pick the k FASTEST processors, not a prefix of the given order, or excluding someone can unlock a better subset and truthful agents end up with negative bonuses; (2) the realized makespan in the bonus must be evaluated under the same public bid-sorted service order the allocation used. With both in place the participation threshold is incentive-safe: excluded agents sit at utility exactly 0 and cannot buy their way in profitably", totalSP, totalVP),
			}, nil
		},
	})
}
