package experiments

import (
	"fmt"
	"math/rand"

	"dlsbl/internal/adversarytest"
	"dlsbl/internal/dlt"
	"dlsbl/internal/obs"
	"dlsbl/internal/protocol"
)

// X19 — the Byzantine adversary tiers, measured. Each row drives one
// seeded adversary model from internal/adversarytest against an
// otherwise honest pool and reports what the defense delivered: whether
// the round completed, who was evicted, who was fined, and whether the
// surviving economics still match the clean run bit-for-bit. The three
// tiers are targeted per-pair message faults (answered by witness
// corroboration and the referee's bid relay), framing (answered by
// conviction of the framer), and fail-stop crashes (answered by
// checkpointed re-allocation over the survivors, with the standby
// referee covering a primary that dies mid-round).
func init() {
	register(Experiment{
		ID:    "X19",
		Title: "Extension: Byzantine adversary tiers — witness corroboration, framing conviction, crash recovery and referee failover",
		Run: func(seed int64) (Result, error) {
			const m = 6
			rng := rand.New(rand.NewSource(seed))
			w := make([]float64, m)
			for i := range w {
				w[i] = 0.5 + rng.Float64()*7.5
			}
			base := protocol.Config{Network: dlt.NCPFE, Z: 0.1, TrueW: w, Seed: seed, NBlocks: 8 * m, Keys: expKeys}
			clean, err := protocol.Run(base)
			if err != nil {
				return Result{}, err
			}

			paymentsMatch := func(out *protocol.Outcome) bool {
				if len(out.Payments) != len(clean.Payments) || out.UserCost != clean.UserCost {
					return false
				}
				for i := range clean.Payments {
					if out.Payments[i] != clean.Payments[i] {
						return false
					}
				}
				return true
			}

			victim := adversarytest.ProcID(m / 2)
			peers := func(n int) []string {
				var ids []string
				for i := 0; i < m && len(ids) < n; i++ {
					if id := adversarytest.ProcID(i); id != victim {
						ids = append(ids, id)
					}
				}
				return ids
			}
			thresh := (m + 1) / 2
			cases := []struct {
				name string
				cfg  func() protocol.Config
			}{
				{"clean bus (reference)", func() protocol.Config { return base }},
				{fmt.Sprintf("targeted drop, %d witness(es)", thresh-1), func() protocol.Config {
					cfg := base
					cfg.Faults = adversarytest.Blackhole(seed, victim, peers(thresh-1)...)
					return cfg
				}},
				{fmt.Sprintf("targeted drop, %d witnesses", thresh), func() protocol.Config {
					cfg := base
					cfg.Faults = adversarytest.Blackhole(seed, victim, peers(thresh)...)
					return cfg
				}},
				{"framing attack", func() protocol.Config {
					cfg := base
					cfg.Behaviors = adversarytest.Framing(m, 0)
					return cfg
				}},
				{"crash in Processing Load", func() protocol.Config {
					cfg := base
					cfg.Faults = adversarytest.CrashPlan(seed, 0, victim)
					return cfg
				}},
				{"crash + referee failover", func() protocol.Config {
					cfg := base
					cfg.Standby = true
					cfg.FailoverIn = obs.PhaseProcessing
					cfg.Faults = adversarytest.CrashPlan(seed, 0, victim)
					return cfg
				}},
			}

			tbl := Table{Columns: []string{"adversary", "completed", "evicted", "fined", "payments vs clean"}}
			for _, tc := range cases {
				out, err := protocol.Run(tc.cfg())
				if err != nil {
					return Result{}, fmt.Errorf("X19 %s: %w", tc.name, err)
				}
				var evicted []string
				for _, ev := range out.Evictions {
					evicted = append(evicted, ev.Proc)
				}
				var fined []string
				for i, fine := range out.Fines {
					if fine > 0 {
						fined = append(fined, out.Procs[i])
					}
				}
				dash := func(xs []string) string {
					if len(xs) == 0 {
						return "—"
					}
					return fmt.Sprintf("%v", xs)
				}
				parity := "survivors differ"
				if paymentsMatch(out) {
					parity = "bit-identical"
				} else if len(out.Evictions) > 0 || len(fined) > 0 {
					parity = "reduced pool"
				}
				tbl.AddRow(tc.name,
					fmt.Sprintf("%v", out.Completed),
					dash(evicted),
					dash(fined),
					parity)
			}
			return Result{
				ID: "X19", Title: "Byzantine adversary tiers", Table: tbl,
				Notes: "the tier-1 boundary is exactly the corroboration threshold ⌈m/2⌉: one witness short of it the referee relays the missing bid and the round settles bit-identically to the clean bus; at the threshold the victim is evicted and the survivors re-solve (Theorem 2.2). The framing row shows the attack is strictly dominated — the rival survives, the framer pays the fine. The crash rows complete over the survivor re-allocation, and adding a mid-round referee failover changes nothing the economics can see: the promoted standby adjudicates from the replicated audit log.",
			}, nil
		},
	})
}
