package experiments

import (
	"fmt"

	"dlsbl/internal/agent"
	"dlsbl/internal/dlt"
	"dlsbl/internal/session"
)

// X14 — repeated play: the paper prices a deviation at the one-shot fine
// F. In a real deployment the same pool plays many jobs, and a reputation
// policy (ban after a fine) adds the deviant's entire future bonus stream
// to the bill. This experiment prices a single round-1 deviation over
// horizons K under both policies.
func init() {
	register(Experiment{
		ID:    "X14",
		Title: "Extension: repeated play — what one deviation really costs over a K-job horizon",
		Run: func(seed int64) (Result, error) {
			tbl := Table{Columns: []string{"policy", "K jobs", "honest ΣU(P2)", "deviant ΣU(P2)", "total loss", "loss/F"}}
			trueW := []float64{1, 1.5, 2, 2.5}
			const fine = 20.0
			for _, policy := range []session.Policy{session.Forgive, session.BanDeviants} {
				for _, K := range []int{1, 2, 4, 8, 16} {
					mk := func(deviant bool) ([]session.Job, error) {
						jobs := make([]session.Job, K)
						for r := range jobs {
							jobs[r] = session.Job{Z: 0.2, Seed: seed + int64(r)}
						}
						if deviant {
							jobs[0].Behaviors = []agent.Behavior{{}, agent.PaymentCheat}
						}
						return jobs, nil
					}
					s := &session.Session{Network: dlt.NCPFE, TrueW: trueW, Fine: fine, Policy: policy, Keys: expKeys}
					honestJobs, err := mk(false)
					if err != nil {
						return Result{}, err
					}
					honest, err := s.Run(honestJobs)
					if err != nil {
						return Result{}, err
					}
					deviantJobs, err := mk(true)
					if err != nil {
						return Result{}, err
					}
					dev, err := s.Run(deviantJobs)
					if err != nil {
						return Result{}, err
					}
					loss := honest.CumulativeUtility[1] - dev.CumulativeUtility[1]
					tbl.AddRow(policy.String(), fmt.Sprintf("%d", K),
						f("%.4f", honest.CumulativeUtility[1]),
						f("%.4f", dev.CumulativeUtility[1]),
						f("%.4f", loss),
						f("%.3f", loss/fine))
				}
			}
			return Result{
				ID: "X14", Title: "repeated play", Table: tbl,
				Notes: "under forgiveness the deviation costs exactly F plus the lost round-1 bonus at every horizon (loss/F ≈ 1.0, flat in K); under the ban policy the loss GROWS with the horizon as every future bonus is forfeited — reputation turns the paper's constant fine into an unbounded deterrent, which is why one-shot fines sized by F ≥ Σα·w̃ suffice in practice even when a single F looks small next to a long engagement",
			}, nil
		},
	})
}
