package experiments

import (
	"fmt"
	"math/rand"

	"dlsbl/internal/core"
	"dlsbl/internal/dlt"
)

// E11 — the DLT-optimal allocation vs naive baselines: the quantitative
// case the paper's introduction makes for optimal divisible-load
// scheduling ("deficient scheduling leads to poorly utilized resources").
func init() {
	register(Experiment{
		ID:    "E11",
		Title: "DLT-optimal allocation vs equal and speed-proportional splits",
		Run: func(seed int64) (Result, error) {
			rng := rand.New(rand.NewSource(seed))
			tbl := Table{Columns: []string{"network", "z", "T_opt", "T_equal", "T_prop", "equal/opt", "prop/opt"}}
			const m = 8
			const trials = 30
			worstEqual, worstProp := 1.0, 1.0
			for _, net := range dlt.Networks {
				for _, z := range []float64{0.05, 0.1, 0.25, 0.45} {
					var sumOpt, sumEq, sumProp float64
					for trial := 0; trial < trials; trial++ {
						in := dlt.RandomInstance(rng, net, m, 0.5, 8, z, z)
						_, opt, err := dlt.OptimalMakespan(in)
						if err != nil {
							return Result{}, err
						}
						eq, err := dlt.Makespan(in, dlt.EqualSplit(m))
						if err != nil {
							return Result{}, err
						}
						prop, err := dlt.Makespan(in, dlt.ProportionalSplit(in.W))
						if err != nil {
							return Result{}, err
						}
						sumOpt += opt
						sumEq += eq
						sumProp += prop
					}
					eqRatio := sumEq / sumOpt
					propRatio := sumProp / sumOpt
					if eqRatio > worstEqual {
						worstEqual = eqRatio
					}
					if propRatio > worstProp {
						worstProp = propRatio
					}
					tbl.AddRow(net.String(), f("%.2f", z),
						f("%.4f", sumOpt/trials), f("%.4f", sumEq/trials), f("%.4f", sumProp/trials),
						f("%.3f", eqRatio), f("%.3f", propRatio))
				}
			}
			return Result{
				ID: "E11", Title: "optimal vs baselines", Table: tbl,
				Notes: fmt.Sprintf("the optimal split always wins; equal split is up to %.2fx worse, speed-proportional up to %.2fx (it ignores communication)", worstEqual, worstProp),
			}, nil
		},
	})
}

// ExecRatios is the execution-slack sweep of E12.
var ExecRatios = []float64{1.0, 1.1, 1.25, 1.5, 2.0, 3.0}

// E12 — the verification ablation: the mechanism-with-verification
// penalizes slow execution; dropping verification (bonus evaluated at the
// bids) removes that incentive entirely.
func init() {
	register(Experiment{
		ID:    "E12",
		Title: "Verification ablation — utility vs execution slack, with and without the meter",
		Run: func(seed int64) (Result, error) {
			rng := rand.New(rand.NewSource(seed))
			in := core.RegimeSafeInstance(rng, dlt.NCPFE, 6)
			mech := core.Mechanism{Network: dlt.NCPFE, Z: in.Z}
			agent := 2

			verified, err := mech.ExecSweep(in.W, agent, ExecRatios, core.WithVerification)
			if err != nil {
				return Result{}, err
			}
			unverified, err := mech.ExecSweep(in.W, agent, ExecRatios, core.WithoutVerification)
			if err != nil {
				return Result{}, err
			}
			tbl := Table{Columns: []string{"exec ratio w̃/t", "U (verified)", "U (unverified)"}}
			monotone := true
			flat := true
			for k := range ExecRatios {
				tbl.AddRow(f("%.2f", ExecRatios[k]),
					f("%.4f", verified[k].Utility),
					f("%.4f", unverified[k].Utility))
				if k > 0 {
					if verified[k].Utility >= verified[k-1].Utility {
						monotone = false
					}
					if unverified[k].Utility != unverified[0].Utility {
						flat = false
					}
				}
			}
			return Result{
				ID: "E12", Title: "verification ablation", Table: tbl,
				Notes: fmt.Sprintf("verified utility strictly decreasing in slack: %v; unverified utility flat (no incentive to run at full speed): %v — verification is what makes slow execution unprofitable", monotone, flat),
			}, nil
		},
	})
}
