// Package dlsbl is the public API of this reproduction of Carroll &
// Grosu, "A Strategyproof Mechanism for Scheduling Divisible Loads in Bus
// Networks without Control Processor" (IPPS 2006).
//
// The library has three layers, re-exported here:
//
//   - Divisible Load Theory: optimal single-round load allocation on bus
//     networks (Instance, Allocation, Optimal, Makespan, Schedule) for the
//     three system classes CP, NCPFE and NCPNFE;
//   - the DLS-BL mechanism: compensation-and-bonus payments with
//     verification (Mechanism, Outcome) that make truth-telling a dominant
//     strategy;
//   - the DLS-BL-NCP protocol: the fully distributed execution of DLS-BL
//     by the strategic processors themselves, with signed messages, a
//     passive referee, fines and fine redistribution (ProtocolConfig,
//     RunProtocol, Behavior). The paper's reliable-broadcast assumption
//     is optional: a seeded FaultPlan injects drops, duplicates,
//     corruption, reordering and jitter, and the protocol answers with
//     idempotent retransmission (RetryPolicy), eviction of unreachable
//     processors and survivor re-allocation (see examples/faultybus).
//
// Quick start:
//
//	in := dlsbl.Instance{Network: dlsbl.NCPFE, Z: 0.2, W: []float64{1, 2, 3}}
//	alloc, makespan, _ := dlsbl.OptimalMakespan(in)
//
//	mech := dlsbl.Mechanism{Network: dlsbl.NCPFE, Z: 0.2}
//	out, _ := mech.Run([]float64{1, 2, 3}, []float64{1, 2, 3})
//
//	res, _ := dlsbl.RunProtocol(dlsbl.ProtocolConfig{
//		Network: dlsbl.NCPFE, Z: 0.2, TrueW: []float64{1, 2, 3},
//	})
//
// See DESIGN.md for the system inventory and EXPERIMENTS.md for the
// paper-vs-measured record of every reproduced figure and theorem.
package dlsbl

import (
	"math/rand"

	"dlsbl/internal/agent"
	"dlsbl/internal/bus"
	"dlsbl/internal/core"
	"dlsbl/internal/dlt"
	"dlsbl/internal/dynamics"
	"dlsbl/internal/experiments"
	"dlsbl/internal/gantt"
	"dlsbl/internal/protocol"
	"dlsbl/internal/referee"
	"dlsbl/internal/session"
)

// ---- Divisible Load Theory (Section 2) ----

// Network identifies a bus-network system class.
type Network = dlt.Network

// The three system classes of the paper.
const (
	// CP: bus with a dedicated control processor (Figure 1).
	CP = dlt.CP
	// NCPFE: no control processor, originator with front end (Figure 2).
	NCPFE = dlt.NCPFE
	// NCPNFE: no control processor, originator without front end
	// (Figure 3).
	NCPNFE = dlt.NCPNFE
)

// Networks lists all three classes in paper order.
var Networks = dlt.Networks

// Instance is one divisible-load scheduling problem.
type Instance = dlt.Instance

// Allocation is a load split α with Σα_i = 1.
type Allocation = dlt.Allocation

// Timeline is an explicit schedule (used by the Gantt renderer).
type Timeline = dlt.Timeline

// AffineInstance extends Instance with fixed communication/computation
// overheads.
type AffineInstance = dlt.AffineInstance

// Optimal computes the optimal allocation (Algorithms 2.1/2.2 and the CP
// analogue).
func Optimal(in Instance) (Allocation, error) { return dlt.Optimal(in) }

// OptimalMakespan computes the optimal allocation and its makespan.
func OptimalMakespan(in Instance) (Allocation, float64, error) { return dlt.OptimalMakespan(in) }

// Makespan evaluates T(α) = max_i T_i(α) for an arbitrary allocation.
func Makespan(in Instance, a Allocation) (float64, error) { return dlt.Makespan(in, a) }

// FinishTimes evaluates the per-processor finishing times of eqs. (1)–(3).
func FinishTimes(in Instance, a Allocation) ([]float64, error) { return dlt.FinishTimes(in, a) }

// Schedule builds the explicit single-round timeline for an allocation.
func Schedule(in Instance, a Allocation) (Timeline, error) { return dlt.Schedule(in, a) }

// EqualSplit and ProportionalSplit are the naive baseline allocators.
func EqualSplit(m int) Allocation              { return dlt.EqualSplit(m) }
func ProportionalSplit(w []float64) Allocation { return dlt.ProportionalSplit(w) }

// OptimalAffine solves the affine-cost extension (fixed overheads, with
// participant selection).
func OptimalAffine(in AffineInstance) (Allocation, float64, error) { return dlt.OptimalAffine(in) }

// StarInstance is the heterogeneous-link star/single-level-tree extension
// (the paper's "other network architectures" future work).
type StarInstance = dlt.StarInstance

// StarAllocation is a star load split (root + children).
type StarAllocation = dlt.StarAllocation

// OptimalStar computes the equal-finish allocation for a star in the
// given child order.
func OptimalStar(s StarInstance) (StarAllocation, error) { return dlt.OptimalStar(s) }

// OptimalStarOrder additionally optimizes the service order (children by
// non-decreasing link time), returning order, allocation and makespan.
func OptimalStarOrder(s StarInstance) ([]int, StarAllocation, float64, error) {
	return dlt.OptimalStarOrder(s)
}

// StarMakespan evaluates a star schedule.
func StarMakespan(s StarInstance, a StarAllocation) (float64, error) { return dlt.StarMakespan(s, a) }

// ExhaustiveStarOrder searches all service orders (m ≤ 9); it exists to
// validate OptimalStarOrder.
func ExhaustiveStarOrder(s StarInstance) ([]int, float64, error) {
	return dlt.ExhaustiveStarOrder(s)
}

// LinearInstance is the daisy-chain (linear network) extension: P_1
// originates and the load is forwarded store-and-forward down the chain,
// every processor computing while it forwards.
type LinearInstance = dlt.LinearInstance

// OptimalLinear computes the equal-finish chain allocation.
func OptimalLinear(l LinearInstance) (Allocation, error) { return dlt.OptimalLinear(l) }

// OptimalLinearMakespan returns the chain allocation and its makespan.
func OptimalLinearMakespan(l LinearInstance) (Allocation, float64, error) {
	return dlt.OptimalLinearMakespan(l)
}

// LinearMakespan evaluates an arbitrary allocation on the chain.
func LinearMakespan(l LinearInstance, a Allocation) (float64, error) {
	return dlt.LinearMakespan(l, a)
}

// LinearSchedule builds the explicit chain timeline (renderable with
// RenderGantt).
func LinearSchedule(l LinearInstance, a Allocation) (Timeline, error) {
	return dlt.LinearSchedule(l, a)
}

// CollectInstance adds result collection to a bus instance: results of
// size Delta·α_i return to the originator over the one-port bus
// (extension X8).
type CollectInstance = dlt.CollectInstance

// CollectOrder selects the return order.
type CollectOrder = dlt.CollectOrder

// The two canonical return orders.
const (
	FIFO = dlt.FIFO
	LIFO = dlt.LIFO
)

// ScheduleWithCollection builds the full distribute-compute-return
// timeline.
func ScheduleWithCollection(c CollectInstance, a Allocation, order CollectOrder) (Timeline, error) {
	return dlt.ScheduleWithCollection(c, a, order)
}

// CollectMakespan evaluates the collection-aware makespan.
func CollectMakespan(c CollectInstance, a Allocation, order CollectOrder) (float64, error) {
	return dlt.CollectMakespan(c, a, order)
}

// TuneCollection improves an allocation for the collection-aware makespan
// by seeded local search; it never returns a worse allocation than the
// input.
func TuneCollection(c CollectInstance, start Allocation, order CollectOrder, iters int, rng *rand.Rand) (Allocation, float64, error) {
	return dlt.TuneCollection(c, start, order, iters, rng)
}

// Tree is a multi-level distribution tree solved by the equivalent-
// processor reduction (extension X9).
type Tree = dlt.Tree

// TreeAllocation holds per-node fractions in pre-order.
type TreeAllocation = dlt.TreeAllocation

// OptimalTree computes the optimal split across a tree and its unit-load
// makespan.
func OptimalTree(t *Tree) (TreeAllocation, float64, error) { return dlt.OptimalTree(t) }

// ---- DLS-BL mechanism (Section 3) ----

// Mechanism is the DLS-BL compensation-and-bonus mechanism with
// verification.
type Mechanism = core.Mechanism

// MechanismOutcome is the full result of running DLS-BL on a bid profile.
type MechanismOutcome = core.Outcome

// SweepPoint is one sample of a bid or execution sweep.
type SweepPoint = core.SweepPoint

// PaymentRule selects the bonus evaluation rule; WithVerification is the
// paper's mechanism, WithoutVerification the E12 ablation.
type PaymentRule = core.PaymentRule

// The two payment rules.
const (
	WithVerification    = core.WithVerification
	WithoutVerification = core.WithoutVerification
)

// TruthfulExec is the execution vector of rational truthful agents.
func TruthfulExec(trueW []float64) []float64 { return core.TruthfulExec(trueW) }

// StarMechanism is DLS-BL transplanted onto a star network with
// heterogeneous public link times (extension X6).
type StarMechanism = core.StarMechanism

// AffineMechanism is DLS-BL under affine costs, with a bid-sorted
// participation threshold (extension X12).
type AffineMechanism = core.AffineMechanism

// LinearMechanism is DLS-BL transplanted onto a daisy chain, with
// non-participants modeled as pure store-and-forward relays (extension
// X7).
type LinearMechanism = core.LinearMechanism

// DynamicsConfig drives best-response bidding dynamics over the mechanism
// (extension X10).
type DynamicsConfig = dynamics.Config

// DynamicsTrace is the recorded history of a dynamics run.
type DynamicsTrace = dynamics.Trace

// RunDynamics executes best-response dynamics and returns the trace.
func RunDynamics(cfg DynamicsConfig) (*DynamicsTrace, error) { return dynamics.Run(cfg) }

// Session plays repeated jobs over one processor pool with a reputation
// policy (extension X14).
type Session = session.Session

// SessionJob is one round of a Session.
type SessionJob = session.Job

// SessionReport aggregates a Session's rounds.
type SessionReport = session.Report

// Reputation policies for a Session.
const (
	Forgive     = session.Forgive
	BanDeviants = session.BanDeviants
)

// ---- DLS-BL-NCP protocol (Section 4) ----

// ProtocolConfig describes one distributed protocol run.
type ProtocolConfig = protocol.Config

// ProtocolOutcome records everything a protocol run produced.
type ProtocolOutcome = protocol.Outcome

// Behavior is a processor strategy; the zero value is honest.
type Behavior = agent.Behavior

// Canonical behaviors, honest and deviant.
var (
	Honest        = agent.Honest
	OverBid       = agent.OverBid
	UnderBid      = agent.UnderBid
	SlowExecution = agent.SlowExecution
	Equivocator   = agent.Equivocator
	PaymentCheat  = agent.PaymentCheat
)

// DeviantCatalog lists every finable behavior.
var DeviantCatalog = agent.DeviantCatalog

// RunProtocol executes DLS-BL-NCP end-to-end.
func RunProtocol(cfg ProtocolConfig) (*ProtocolOutcome, error) { return protocol.Run(cfg) }

// FaultPlan is a seeded adversarial link layer for the simulated bus:
// message drops, duplicates, delays, signature-breaking corruption,
// reordering, data-plane latency jitter and crashed endpoints. Set it on
// ProtocolConfig.Faults (or SessionJob.Faults) to run the protocol
// without the paper's reliable-broadcast assumption; nil keeps the
// reliable bus of the paper.
type FaultPlan = bus.FaultPlan

// PairFault is a targeted fault on one directed link (FaultPlan.Pairs):
// an adversary severing or degrading chosen sender→receiver paths
// rather than the whole bus. Eviction under targeted loss demands
// corroboration from ⌈m/2⌉ distinct witnesses; below that threshold the
// referee relays the missing bid and payments stay bit-identical to the
// fault-free run (see README "Byzantine adversaries" and DESIGN.md §15).
type PairFault = bus.PairFault

// Crash schedules a processor death mid-run (FaultPlan.Crashes): the
// victim bids, is allocated, then goes dark while computing. It is
// evicted at the processing checkpoint and the remaining load
// re-balances over the survivors per Theorem 2.2.
type Crash = bus.Crash

// RetryPolicy bounds the reliable-transport machinery the protocol runs
// over a faulty bus: per-message attempt budget, capped exponential
// backoff, per-phase deadline.
type RetryPolicy = protocol.RetryPolicy

// FaultStats counts what the transport layer did during a run
// (retransmissions, duplicate/corrupt discards, backoff time, evictions).
type FaultStats = protocol.FaultStats

// EvictionEvent records a processor removed from a run for
// unreachability — an audited availability failure, not a fined offense.
type EvictionEvent = protocol.EvictionEvent

// RunProtocolCP executes the centralized prior-work DLS-BL protocol with
// a trusted control processor (extension X11's baseline).
func RunProtocolCP(cfg ProtocolConfig) (*ProtocolOutcome, error) { return protocol.RunCP(cfg) }

// BidSession amortizes the Bidding phase across a stream of loads: bid
// once, allocate many times, re-bid only on membership or rate change.
// Payments are bit-identical to per-job bidding; per-job control traffic
// drops Θ(m²) → Θ(m) after the first round (see DESIGN.md §10).
type BidSession = protocol.BidSession

// JobConfig is one load served by a BidSession.
type JobConfig = protocol.JobConfig

// NewBidSession validates the pool config (per-job fields must be unset)
// and returns a session whose first Run bids and whose later Runs reuse.
func NewBidSession(cfg ProtocolConfig) (*BidSession, error) { return protocol.NewBidSession(cfg) }

// ---- Rendering and experiments ----

// GanttOptions controls timeline rendering.
type GanttOptions = gantt.Options

// RenderGantt draws a timeline as a text Gantt chart (Figures 1–3).
func RenderGantt(tl Timeline, opt GanttOptions) (string, error) { return gantt.Render(tl, opt) }

// RenderFigure renders the paper's figure for an instance's optimal
// schedule.
func RenderFigure(in Instance, opt GanttOptions) (string, error) { return gantt.Figure(in, opt) }

// SVGOptions controls vector rendering of timelines.
type SVGOptions = gantt.SVGOptions

// RenderSVG draws a timeline as a standalone SVG document.
func RenderSVG(tl Timeline, opt SVGOptions) (string, error) { return gantt.RenderSVG(tl, opt) }

// RenderFigureSVG renders an instance's optimal schedule as SVG.
func RenderFigureSVG(in Instance, opt SVGOptions) (string, error) { return gantt.FigureSVG(in, opt) }

// AuditEntry is one record of the referee's hash-chained transcript.
type AuditEntry = referee.AuditEntry

// VerifyTranscript validates a transcript attached to a protocol outcome.
func VerifyTranscript(entries []AuditEntry) error { return referee.VerifyEntries(entries) }

// Experiment is one reproducible paper artifact (figure or theorem).
type Experiment = experiments.Experiment

// ExperimentResult is an experiment's rendered output.
type ExperimentResult = experiments.Result

// Experiments returns every experiment E1…E12 in order.
func Experiments() []Experiment { return experiments.All() }

// ExperimentByID looks one up ("E1" … "E12").
func ExperimentByID(id string) (Experiment, bool) { return experiments.ByID(id) }
