// Command dls-sim runs one full DLS-BL-NCP protocol simulation: m
// strategic processors on a bus network without a control processor go
// through Bidding, Allocating Load, Processing Load and Computing
// Payments, with the referee adjudicating any injected deviation.
//
// Usage:
//
//	dls-sim -net ncp-fe -z 0.2 -w 1,1.5,2,2.5
//	dls-sim -w 1,1.5,2,2.5 -deviant 1=equivocator
//	dls-sim -w 1,1.5,2,2.5 -deviant 0=shortship-originator -v
//	dls-sim -w 1,1.5,2,2.5 -trace run.json   # chrome://tracing view
//
// The -deviant flag takes index=behavior, where behavior is one of the
// named strategies (run with -behaviors to list them).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"dlsbl/internal/agent"
	"dlsbl/internal/dlt"
	"dlsbl/internal/gantt"
	"dlsbl/internal/obs"
	"dlsbl/internal/protocol"
)

func behaviorCatalog() map[string]agent.Behavior { return agent.Catalog() }

func main() {
	netName := flag.String("net", "ncp-fe", "network class: ncp-fe or ncp-nfe")
	z := flag.Float64("z", 0.2, "per-unit communication time")
	wList := flag.String("w", "1,1.5,2,2.5", "comma-separated true processing times")
	deviant := flag.String("deviant", "", "inject a deviation: index=behavior (0-based index)")
	fine := flag.Float64("fine", 0, "fine magnitude F (0 = derived from bids)")
	seed := flag.Int64("seed", 1, "seed for keys and dataset")
	verbose := flag.Bool("v", false, "print verdicts, the invoice and the realized Gantt chart")
	jsonOut := flag.Bool("json", false, "emit the full outcome as JSON")
	tracePath := flag.String("trace", "", "write a Chrome trace-event JSON of the run (open in chrome://tracing or Perfetto)")
	listBehaviors := flag.Bool("behaviors", false, "list behavior names and exit")
	flag.Parse()

	catalog := behaviorCatalog()
	if *listBehaviors {
		for name := range catalog {
			fmt.Println(name)
		}
		return
	}

	var net dlt.Network
	switch strings.ToLower(*netName) {
	case "ncp-fe", "ncpfe", "fe":
		net = dlt.NCPFE
	case "ncp-nfe", "ncpnfe", "nfe":
		net = dlt.NCPNFE
	default:
		fail(fmt.Errorf("unknown network %q (DLS-BL-NCP runs on ncp-fe or ncp-nfe)", *netName))
	}

	w, err := parseFloats(*wList)
	if err != nil {
		fail(err)
	}

	behaviors := make([]agent.Behavior, len(w))
	if *deviant != "" {
		idxStr, name, ok := strings.Cut(*deviant, "=")
		if !ok {
			fail(fmt.Errorf("-deviant wants index=behavior, got %q", *deviant))
		}
		idx, err := strconv.Atoi(idxStr)
		if err != nil || idx < 0 || idx >= len(w) {
			fail(fmt.Errorf("invalid deviant index %q", idxStr))
		}
		b, ok := catalog[name]
		if !ok {
			fail(fmt.Errorf("unknown behavior %q (use -behaviors)", name))
		}
		behaviors[idx] = b
	}

	var rec *obs.Recorder
	cfg := protocol.Config{
		Network:   net,
		Z:         *z,
		TrueW:     w,
		Behaviors: behaviors,
		Fine:      *fine,
		Seed:      *seed,
	}
	if *tracePath != "" {
		rec = obs.NewRecorder()
		cfg.Tracer = rec
	}
	out, err := protocol.Run(cfg)
	if err != nil {
		fail(err)
	}
	if rec != nil {
		if err := writeTrace(*tracePath, rec); err != nil {
			fail(err)
		}
		fmt.Fprintf(os.Stderr, "trace written to %s (open in chrome://tracing)\n", *tracePath)
	}
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			fail(err)
		}
		return
	}
	report(out, *verbose)
}

func report(out *protocol.Outcome, verbose bool) {
	if out.Completed {
		fmt.Printf("protocol completed; realized makespan %.6g, user paid %.6g (F=%.4g)\n",
			out.Makespan, out.UserCost, out.FineMagnitude)
	} else {
		fmt.Printf("protocol TERMINATED in the %s phase (F=%.4g)\n", out.TerminatedIn, out.FineMagnitude)
	}
	fmt.Printf("%-5s %10s %10s %10s %10s %10s %10s\n",
		"proc", "bid", "alpha", "payment", "fine", "reward", "utility")
	for i, p := range out.Procs {
		alpha, q := 0.0, 0.0
		if i < len(out.Alloc) {
			alpha = out.Alloc[i]
		}
		if i < len(out.Payments) {
			q = out.Payments[i]
		}
		fmt.Printf("%-5s %10.4f %10.4f %10.4f %10.4f %10.4f %10.4f\n",
			p, out.Bids[i], alpha, q, out.Fines[i], out.Rewards[i], out.Utilities[i])
	}
	fmt.Printf("bus traffic: %d messages, %d units (%d broadcasts, %d unicasts)\n",
		out.BusStats.Messages, out.BusStats.Units, out.BusStats.Broadcasts, out.BusStats.Unicasts)
	if verbose {
		for _, v := range out.Verdicts {
			status := "clean"
			if !v.Clean() {
				status = "fined " + strings.Join(v.Guilty, "+")
			}
			fmt.Printf("verdict [%s] %s: %s\n", v.Phase, status, v.Reason)
		}
		if out.Completed {
			fmt.Print(out.Invoice.String())
			chart, err := gantt.Render(out.Timeline, gantt.Options{Width: 72, ShowBus: true, ShowTimes: true})
			if err == nil {
				fmt.Print(chart)
			}
		}
	}
}

func parseFloats(s string) ([]float64, error) {
	parts := strings.Split(s, ",")
	out := make([]float64, 0, len(parts))
	for _, p := range parts {
		v, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
		if err != nil {
			return nil, fmt.Errorf("parsing %q: %w", p, err)
		}
		out = append(out, v)
	}
	return out, nil
}

func writeTrace(path string, rec *obs.Recorder) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := rec.WriteChromeTrace(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func fail(err error) {
	fmt.Fprintf(os.Stderr, "dls-sim: %v\n", err)
	os.Exit(1)
}
