// Command dls-gantt renders the execution timing diagram of a
// divisible-load schedule — the charts of the paper's Figures 1–3 — for
// any instance given on the command line.
//
// Usage:
//
//	dls-gantt -net ncp-fe -z 0.2 -w 1,1.5,2,2.5,3
//	dls-gantt -net cp -z 0.5 -w 2,2,2 -width 100
//
// With -rounds > 1 the chart shows the pipelined schedule instead: the
// load split into that many installments (equal or geometric -policy)
// under the throughput-balanced allocation, one stacked sub-bar per
// installment so the comm/compute overlap is visible.
//
//	dls-gantt -net ncp-fe -z 0.2 -w 1,1.5,2,2.5,3 -rounds 4 -policy geometric
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"dlsbl/internal/dlt"
	"dlsbl/internal/gantt"
)

func main() {
	netName := flag.String("net", "ncp-fe", "network class: cp, ncp-fe or ncp-nfe")
	z := flag.Float64("z", 0.2, "per-unit communication time")
	wList := flag.String("w", "1,1.5,2,2.5,3", "comma-separated per-unit processing times")
	width := flag.Int("width", 72, "chart width in cells")
	svgPath := flag.String("svg", "", "additionally write the chart as an SVG file")
	rounds := flag.Int("rounds", 1, "installment rounds (>1 renders the pipelined schedule)")
	policyName := flag.String("policy", "equal", "installment division policy: equal or geometric")
	flag.Parse()

	net, err := parseNetwork(*netName)
	if err != nil {
		fail(err)
	}
	w, err := parseFloats(*wList)
	if err != nil {
		fail(err)
	}
	policy, err := dlt.ParseRoundPolicy(*policyName)
	if err != nil {
		fail(err)
	}
	in := dlt.Instance{Network: net, Z: *z, W: w}
	out, err := gantt.FigureRounds(in, *rounds, policy, gantt.Options{Width: *width, ShowBus: true, ShowTimes: true})
	if err != nil {
		fail(err)
	}
	fmt.Print(out)
	if *svgPath != "" {
		svg, err := gantt.FigureSVG(in, gantt.SVGOptions{ShowBus: true})
		if err != nil {
			fail(err)
		}
		if err := os.WriteFile(*svgPath, []byte(svg), 0o644); err != nil {
			fail(err)
		}
		fmt.Printf("wrote %s\n", *svgPath)
	}
}

func parseNetwork(s string) (dlt.Network, error) {
	switch strings.ToLower(s) {
	case "cp":
		return dlt.CP, nil
	case "ncp-fe", "ncpfe", "fe":
		return dlt.NCPFE, nil
	case "ncp-nfe", "ncpnfe", "nfe":
		return dlt.NCPNFE, nil
	}
	return 0, fmt.Errorf("unknown network %q (want cp, ncp-fe or ncp-nfe)", s)
}

func parseFloats(s string) ([]float64, error) {
	parts := strings.Split(s, ",")
	out := make([]float64, 0, len(parts))
	for _, p := range parts {
		v, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
		if err != nil {
			return nil, fmt.Errorf("parsing %q: %w", p, err)
		}
		out = append(out, v)
	}
	return out, nil
}

func fail(err error) {
	fmt.Fprintf(os.Stderr, "dls-gantt: %v\n", err)
	os.Exit(1)
}
