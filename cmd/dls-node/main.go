// Command dls-node runs one mailbox node of the netbus: a stateless
// relay process that hosts the inboxes of the protocol endpoints
// assigned to it in the peer table and answers FtMsg/FtDrain/FtPing
// datagrams over UDP. It never dials out and never originates traffic —
// all protocol logic (agents, referee, retry/backoff) lives in the
// driver process (dls-serve -net-round); a dls-node only stores and
// forwards sealed envelopes.
//
// Usage:
//
//	dls-node -config peers.json -node w1
//
// peers.json is the shared static peer table (see docs/DEPLOY.md):
//
//	{"nodes": {
//	  "serve": {"addr": "127.0.0.1:9000", "endpoints": ["referee"]},
//	  "w1":    {"addr": "127.0.0.1:9001", "endpoints": ["P1", "P2"]},
//	  "w2":    {"addr": "127.0.0.1:9002", "endpoints": ["P3", "P4"]}
//	}}
//
// Once the socket is bound the process prints a single "ready" line on
// stdout (machine-readable, used by the smoke test and deploy scripts):
//
//	ready node=w1 addr=127.0.0.1:9001 endpoints=P1,P2
//
// SIGINT/SIGTERM close the socket and exit 0, printing the node's
// traffic counters on stderr. The wire format is documented in
// docs/WIRE.md.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"

	"dlsbl/internal/netbus"
)

func main() {
	configPath := flag.String("config", "", "peer-table JSON file (required)")
	nodeName := flag.String("node", "", "this process's node name in the peer table (required)")
	flag.Parse()

	fail := func(err error) {
		fmt.Fprintf(os.Stderr, "dls-node: %v\n", err)
		os.Exit(1)
	}
	if *configPath == "" || *nodeName == "" {
		fail(fmt.Errorf("both -config and -node are required"))
	}

	cfg, err := netbus.LoadConfig(*configPath)
	if err != nil {
		fail(err)
	}
	node, err := netbus.ListenNode(cfg, *nodeName)
	if err != nil {
		fail(err)
	}

	// The ready line is the startup contract: once printed, the socket
	// is bound and every hosted mailbox answers.
	fmt.Printf("ready node=%s addr=%s endpoints=%s\n",
		*nodeName, node.LocalAddr(), strings.Join(cfg.Nodes[*nodeName].Endpoints, ","))

	errc := make(chan error, 1)
	go func() { errc <- node.Serve() }()

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errc:
		if err != nil {
			fail(err)
		}
	case <-sigc:
		node.Close()
		<-errc
	}
	st := node.Stats()
	fmt.Fprintf(os.Stderr, "dls-node %s: enqueued=%d dedup_hits=%d drains=%d bad_frames=%d\n",
		*nodeName, st.Enqueued, st.DedupHits, st.Drains, st.BadFrames)
}
