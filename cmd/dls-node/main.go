// Command dls-node runs one mailbox node of the netbus: a stateless
// relay process that hosts the inboxes of the protocol endpoints
// assigned to it in the peer table and answers FtMsg/FtDrain/FtPing
// datagrams over UDP. It never dials out and never originates traffic —
// all protocol logic (agents, referee, retry/backoff) lives in the
// driver process (dls-serve -net-round); a dls-node only stores and
// forwards sealed envelopes.
//
// Usage:
//
//	dls-node -config peers.json -node w1
//
// peers.json is the shared static peer table (see docs/DEPLOY.md):
//
//	{"nodes": {
//	  "serve": {"addr": "127.0.0.1:9000", "endpoints": ["referee"]},
//	  "w1":    {"addr": "127.0.0.1:9001", "endpoints": ["P1", "P2"]},
//	  "w2":    {"addr": "127.0.0.1:9002", "endpoints": ["P3", "P4"]}
//	}}
//
// Observability (all optional, see docs/DEPLOY.md):
//
//	-trace FILE     stream datagram-plane obs events as NDJSON to FILE
//	                ("-" for stderr) as they happen
//	-telemetry N    buffer up to N trace records in memory and serve them
//	                to the driver's FtTelemetry drains (wire v2); the
//	                driver stitches them into one cross-process trace
//	-metrics-addr A serve GET /metrics on A in Prometheus text format
//	                (node_* counters: datagrams, resends, decode
//	                failures, mailbox depth)
//
// Once the socket is bound the process prints a single "ready" line on
// stdout (machine-readable, used by the smoke test and deploy scripts):
//
//	ready node=w1 addr=127.0.0.1:9001 endpoints=P1,P2
//
// SIGINT/SIGTERM close the socket and exit 0, printing the node's
// traffic counters on stderr. The wire format is documented in
// docs/WIRE.md.
package main

import (
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"

	"dlsbl/internal/netbus"
	"dlsbl/internal/obs"
)

func main() {
	configPath := flag.String("config", "", "peer-table JSON file (required)")
	nodeName := flag.String("node", "", "this process's node name in the peer table (required)")
	tracePath := flag.String("trace", "", "stream obs events as NDJSON to this file (\"-\" for stderr)")
	telemetryCap := flag.Int("telemetry", 0, "buffer up to N trace records for driver-pulled telemetry drains (0 disables)")
	metricsAddr := flag.String("metrics-addr", "", "serve GET /metrics (Prometheus text format) on this address")
	flag.Parse()

	fail := func(err error) {
		fmt.Fprintf(os.Stderr, "dls-node: %v\n", err)
		os.Exit(1)
	}
	if *configPath == "" || *nodeName == "" {
		fail(fmt.Errorf("both -config and -node are required"))
	}

	cfg, err := netbus.LoadConfig(*configPath)
	if err != nil {
		fail(err)
	}
	node, err := netbus.ListenNode(cfg, *nodeName)
	if err != nil {
		fail(err)
	}

	if *telemetryCap > 0 {
		node.EnableTelemetry(*telemetryCap)
	}
	var traceFile *os.File
	if *tracePath != "" {
		traceFile = os.Stderr
		if *tracePath != "-" {
			traceFile, err = os.Create(*tracePath)
			if err != nil {
				fail(err)
			}
		}
		node.SetTracer(obs.NewStream(traceFile))
	}
	var metricsLn net.Listener
	if *metricsAddr != "" {
		metricsLn, err = net.Listen("tcp", *metricsAddr)
		if err != nil {
			fail(err)
		}
		mux := http.NewServeMux()
		mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
			w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
			w.WriteHeader(http.StatusOK)
			_ = node.WriteNodePrometheus(w)
		})
		go func() { _ = http.Serve(metricsLn, mux) }()
	}

	// The ready line is the startup contract: once printed, the socket
	// is bound and every hosted mailbox answers.
	fmt.Printf("ready node=%s addr=%s endpoints=%s\n",
		*nodeName, node.LocalAddr(), strings.Join(cfg.Nodes[*nodeName].Endpoints, ","))

	errc := make(chan error, 1)
	go func() { errc <- node.Serve() }()

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errc:
		if err != nil {
			fail(err)
		}
	case <-sigc:
		node.Close()
		<-errc
	}
	if metricsLn != nil {
		metricsLn.Close()
	}
	if traceFile != nil && traceFile != os.Stderr {
		traceFile.Close()
	}
	st := node.Stats()
	fmt.Fprintf(os.Stderr, "dls-node %s: enqueued=%d dedup_hits=%d drains=%d bad_frames=%d datagrams_in=%d datagrams_out=%d\n",
		*nodeName, st.Enqueued, st.DedupHits, st.Drains, st.BadFrames, st.DatagramsIn, st.DatagramsOut)
}
