// Command doccheck lints Go packages for missing doc comments on
// exported top-level declarations — the documentation gate `make ci`
// runs over the packages whose godoc is part of the repo's contract.
//
// Usage:
//
//	doccheck ./internal/protocol ./internal/sig ./internal/netbus
//
// Each argument is a package directory (one directory per argument, no
// "..." expansion). For every exported type, function, method, constant
// and variable declared at the top level of a non-test file, doccheck
// requires a doc comment: either directly on the declaration or, for
// grouped const/var blocks, on the group. Exit status 1 lists every
// undocumented symbol as file:line: name.
package main

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"sort"
	"strings"
)

func main() {
	if len(os.Args) < 2 {
		fmt.Fprintln(os.Stderr, "usage: doccheck <pkg-dir> [pkg-dir...]")
		os.Exit(2)
	}
	var problems []string
	for _, dir := range os.Args[1:] {
		p, err := checkDir(dir)
		if err != nil {
			fmt.Fprintf(os.Stderr, "doccheck: %v\n", err)
			os.Exit(2)
		}
		problems = append(problems, p...)
	}
	if len(problems) > 0 {
		sort.Strings(problems)
		for _, p := range problems {
			fmt.Println(p)
		}
		fmt.Fprintf(os.Stderr, "doccheck: %d exported symbol(s) missing doc comments\n", len(problems))
		os.Exit(1)
	}
}

// checkDir parses one package directory and returns a problem line per
// undocumented exported top-level symbol.
func checkDir(dir string) ([]string, error) {
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, dir, func(fi os.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, parser.ParseComments)
	if err != nil {
		return nil, fmt.Errorf("parsing %s: %w", dir, err)
	}
	var problems []string
	report := func(pos token.Pos, name string) {
		p := fset.Position(pos)
		problems = append(problems, fmt.Sprintf("%s:%d: %s", p.Filename, p.Line, name))
	}
	for _, pkg := range pkgs {
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				switch d := decl.(type) {
				case *ast.FuncDecl:
					if d.Name.IsExported() && d.Doc == nil {
						report(d.Pos(), funcName(d))
					}
				case *ast.GenDecl:
					checkGenDecl(d, report)
				}
			}
		}
	}
	return problems, nil
}

// funcName renders a function or method name for the report.
func funcName(d *ast.FuncDecl) string {
	if d.Recv == nil || len(d.Recv.List) == 0 {
		return d.Name.Name
	}
	recv := d.Recv.List[0].Type
	if star, ok := recv.(*ast.StarExpr); ok {
		recv = star.X
	}
	if id, ok := recv.(*ast.Ident); ok {
		return id.Name + "." + d.Name.Name
	}
	return d.Name.Name
}

// checkGenDecl inspects one const/var/type block. A doc comment on the
// group covers every spec in it (the grouped-constants idiom); otherwise
// each exported spec needs its own.
func checkGenDecl(d *ast.GenDecl, report func(token.Pos, string)) {
	if d.Tok != token.CONST && d.Tok != token.VAR && d.Tok != token.TYPE {
		return
	}
	groupDoc := d.Doc != nil
	for _, spec := range d.Specs {
		switch s := spec.(type) {
		case *ast.TypeSpec:
			if s.Name.IsExported() && !groupDoc && s.Doc == nil {
				report(s.Pos(), s.Name.Name)
			}
		case *ast.ValueSpec:
			if groupDoc || s.Doc != nil || s.Comment != nil {
				continue
			}
			for _, name := range s.Names {
				if name.IsExported() {
					report(name.Pos(), name.Name)
				}
			}
		}
	}
}
