package main

import (
	"encoding/json"
	"fmt"
	"os"
	"reflect"
	"sort"
	"strconv"
	"strings"
	"time"

	"dlsbl/internal/dlt"
	"dlsbl/internal/netbus"
	"dlsbl/internal/obs"
	"dlsbl/internal/protocol"
	"dlsbl/internal/sig"
)

// netRoundOpts collects the -net-* flags for the one-shot multi-process
// mode.
type netRoundOpts struct {
	config  string
	node    string
	network string
	w       string
	z       float64
	seed    int64
	// trace, when non-empty, is the path the merged cross-process Chrome
	// trace is written to: the driver records its own obs stream, pulls
	// each worker node's telemetry buffer after the round (FtTelemetry
	// drains; the nodes must run with -telemetry), aligns the per-process
	// clocks and stitches one trace with a track group per OS process.
	trace string
}

// netRoundReport is the JSON document net-round prints on stdout.
type netRoundReport struct {
	Network   string    `json:"network"`
	Seed      int64     `json:"seed"`
	W         []float64 `json:"w"`
	Payments  []float64 `json:"payments"`
	Fines     []float64 `json:"fines"`
	Utilities []float64 `json:"utilities"`
	Makespan  float64   `json:"makespan"`
	Dropped   int       `json:"dropped"`
	Parity    string    `json:"parity"`
	Diverged  []string  `json:"diverged,omitempty"`

	// Trace telemetry (-net-trace only): where the merged Chrome trace
	// landed, how many OS processes contributed tracks, and how many
	// records each contributed (driver first, then nodes sorted by name).
	TraceFile     string         `json:"trace_file,omitempty"`
	TraceRecords  map[string]int `json:"trace_records,omitempty"`
	TraceStitched int            `json:"trace_stitched,omitempty"`
}

// runNetRound executes one full protocol round twice — over the real
// UDP netbus described by the peer table, with this process as the
// driver node, and over the in-process simulated bus with the same seed
// and keyring — then prints a JSON report carrying the net run's
// payments and a parity verdict. The exit code is 0 when payments,
// fines, utilities, verdicts and the referee transcript are
// bit-identical across the two media, 1 otherwise.
func runNetRound(o netRoundOpts) int {
	fail := func(err error) int {
		fmt.Fprintf(os.Stderr, "dls-serve: net-round: %v\n", err)
		return 1
	}
	var network dlt.Network
	switch strings.ToLower(o.network) {
	case "ncp-fe", "ncpfe", "fe":
		network = dlt.NCPFE
	case "ncp-nfe", "ncpnfe", "nfe":
		network = dlt.NCPNFE
	default:
		return fail(fmt.Errorf("unknown network %q (DLS-BL-NCP runs on ncp-fe or ncp-nfe)", o.network))
	}
	w, err := parseW(o.w)
	if err != nil {
		return fail(err)
	}
	if o.config == "" {
		return fail(fmt.Errorf("-net-config is required"))
	}
	cfg, err := netbus.LoadConfig(o.config)
	if err != nil {
		return fail(err)
	}

	medium, err := netbus.Dial(cfg, o.node, netbus.Options{})
	if err != nil {
		return fail(err)
	}
	defer medium.Close()
	if err := awaitPeers(medium, cfg, o.node, 10*time.Second); err != nil {
		return fail(err)
	}

	// One keyring for both runs: the acceptance criterion is parity with
	// identical seed AND keyring, so signatures (and therefore the
	// hash-chained referee transcript) match byte for byte.
	keys := sig.NewKeyring()
	base := protocol.Config{
		Network: network,
		Z:       o.z,
		TrueW:   w,
		Seed:    o.seed,
		Keys:    keys,
	}

	// Both runs share one round identity so the netbus stamps it into
	// every frame (workers attribute datagrams to it in their telemetry)
	// and the two referee transcripts stay comparable byte for byte.
	roundID := fmt.Sprintf("net%d:r1", o.seed)
	simCfg := base
	simOut, err := protocol.RunRound(simCfg, roundID)
	if err != nil {
		return fail(fmt.Errorf("simulated-bus run: %w", err))
	}
	netCfg := base
	netCfg.Medium = medium
	// The simulated reference run stays untraced: the acceptance bar for
	// tracing is the nil-parity contract — attaching a recorder to the
	// socket run must leave its payments bit-identical to the untraced
	// simulated run.
	var rec *obs.Recorder
	if o.trace != "" {
		rec = obs.NewRecorder()
		netCfg.Tracer = rec
	}
	netOut, err := protocol.RunRound(netCfg, roundID)
	if err != nil {
		return fail(fmt.Errorf("netbus run: %w", err))
	}

	var procs []obs.ProcessTrace
	traceRecords := map[string]int{}
	if rec != nil {
		// Driver first: its recorder holds both sides' stitching brackets
		// and serves as the merged trace's reference clock.
		procs = append(procs, obs.ProcessTrace{Process: o.node, Records: rec.Records()})
		var names []string
		for name := range cfg.Nodes {
			if name != o.node {
				names = append(names, name)
			}
		}
		sort.Strings(names)
		for _, name := range names {
			recs, err := medium.CollectTelemetry(name)
			if err != nil {
				return fail(fmt.Errorf("collecting telemetry from %q: %w", name, err))
			}
			if len(recs) == 0 {
				// An unarmed node answers telemetry requests with an empty
				// stream; a worker that just served a round has records.
				return fail(fmt.Errorf("node %q returned no telemetry (is it running with -telemetry?)", name))
			}
			procs = append(procs, obs.ProcessTrace{Process: name, Records: recs})
		}
		for _, p := range procs {
			traceRecords[p.Process] = len(p.Records)
		}
		merged, err := obs.MergeChromeTrace(procs)
		if err != nil {
			return fail(err)
		}
		if err := os.WriteFile(o.trace, merged, 0o644); err != nil {
			return fail(err)
		}
	}

	var diverged []string
	check := func(field string, sim, net any) {
		if !reflect.DeepEqual(sim, net) {
			diverged = append(diverged, field)
		}
	}
	check("payments", simOut.Payments, netOut.Payments)
	check("fines", simOut.Fines, netOut.Fines)
	check("utilities", simOut.Utilities, netOut.Utilities)
	check("verdicts", simOut.Verdicts, netOut.Verdicts)
	check("transcript", simOut.Transcript, netOut.Transcript)

	report := netRoundReport{
		Network:   o.network,
		Seed:      o.seed,
		W:         w,
		Payments:  netOut.Payments,
		Fines:     netOut.Fines,
		Utilities: netOut.Utilities,
		Makespan:  netOut.Makespan,
		Dropped:   medium.Stats().Dropped,
		Parity:    "ok",
	}
	if rec != nil {
		report.TraceFile = o.trace
		report.TraceRecords = traceRecords
		report.TraceStitched = len(procs)
	}
	if len(diverged) > 0 {
		report.Parity = "FAIL"
		report.Diverged = diverged
	}
	enc := json.NewEncoder(os.Stdout)
	if err := enc.Encode(report); err != nil {
		return fail(err)
	}
	if report.Parity != "ok" {
		fmt.Fprintf(os.Stderr, "dls-serve: net-round: parity FAIL (%s)\n", strings.Join(diverged, ", "))
		return 1
	}
	return 0
}

// awaitPeers pings every remote node of the peer table until all answer
// or the deadline passes — worker processes may still be binding their
// sockets when the driver starts.
func awaitPeers(m *netbus.Medium, cfg *netbus.Config, local string, patience time.Duration) error {
	deadline := time.Now().Add(patience)
	for name := range cfg.Nodes {
		if name == local {
			continue
		}
		for {
			err := m.Ping(name)
			if err == nil {
				break
			}
			if time.Now().After(deadline) {
				return fmt.Errorf("node %q not answering pings: %w", name, err)
			}
		}
	}
	return nil
}

// parseW parses a comma-separated list of w_i work parameters.
func parseW(s string) ([]float64, error) {
	parts := strings.Split(s, ",")
	out := make([]float64, 0, len(parts))
	for _, p := range parts {
		v, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
		if err != nil {
			return nil, fmt.Errorf("parsing w %q: %w", p, err)
		}
		out = append(out, v)
	}
	return out, nil
}
