package main

import (
	"encoding/json"
	"fmt"
	"os"
	"reflect"
	"strconv"
	"strings"
	"time"

	"dlsbl/internal/dlt"
	"dlsbl/internal/netbus"
	"dlsbl/internal/protocol"
	"dlsbl/internal/sig"
)

// netRoundOpts collects the -net-* flags for the one-shot multi-process
// mode.
type netRoundOpts struct {
	config  string
	node    string
	network string
	w       string
	z       float64
	seed    int64
}

// netRoundReport is the JSON document net-round prints on stdout.
type netRoundReport struct {
	Network   string    `json:"network"`
	Seed      int64     `json:"seed"`
	W         []float64 `json:"w"`
	Payments  []float64 `json:"payments"`
	Fines     []float64 `json:"fines"`
	Utilities []float64 `json:"utilities"`
	Makespan  float64   `json:"makespan"`
	Dropped   int       `json:"dropped"`
	Parity    string    `json:"parity"`
	Diverged  []string  `json:"diverged,omitempty"`
}

// runNetRound executes one full protocol round twice — over the real
// UDP netbus described by the peer table, with this process as the
// driver node, and over the in-process simulated bus with the same seed
// and keyring — then prints a JSON report carrying the net run's
// payments and a parity verdict. The exit code is 0 when payments,
// fines, utilities, verdicts and the referee transcript are
// bit-identical across the two media, 1 otherwise.
func runNetRound(o netRoundOpts) int {
	fail := func(err error) int {
		fmt.Fprintf(os.Stderr, "dls-serve: net-round: %v\n", err)
		return 1
	}
	var network dlt.Network
	switch strings.ToLower(o.network) {
	case "ncp-fe", "ncpfe", "fe":
		network = dlt.NCPFE
	case "ncp-nfe", "ncpnfe", "nfe":
		network = dlt.NCPNFE
	default:
		return fail(fmt.Errorf("unknown network %q (DLS-BL-NCP runs on ncp-fe or ncp-nfe)", o.network))
	}
	w, err := parseW(o.w)
	if err != nil {
		return fail(err)
	}
	if o.config == "" {
		return fail(fmt.Errorf("-net-config is required"))
	}
	cfg, err := netbus.LoadConfig(o.config)
	if err != nil {
		return fail(err)
	}

	medium, err := netbus.Dial(cfg, o.node, netbus.Options{})
	if err != nil {
		return fail(err)
	}
	defer medium.Close()
	if err := awaitPeers(medium, cfg, o.node, 10*time.Second); err != nil {
		return fail(err)
	}

	// One keyring for both runs: the acceptance criterion is parity with
	// identical seed AND keyring, so signatures (and therefore the
	// hash-chained referee transcript) match byte for byte.
	keys := sig.NewKeyring()
	base := protocol.Config{
		Network: network,
		Z:       o.z,
		TrueW:   w,
		Seed:    o.seed,
		Keys:    keys,
	}

	simCfg := base
	simOut, err := protocol.Run(simCfg)
	if err != nil {
		return fail(fmt.Errorf("simulated-bus run: %w", err))
	}
	netCfg := base
	netCfg.Medium = medium
	netOut, err := protocol.Run(netCfg)
	if err != nil {
		return fail(fmt.Errorf("netbus run: %w", err))
	}

	var diverged []string
	check := func(field string, sim, net any) {
		if !reflect.DeepEqual(sim, net) {
			diverged = append(diverged, field)
		}
	}
	check("payments", simOut.Payments, netOut.Payments)
	check("fines", simOut.Fines, netOut.Fines)
	check("utilities", simOut.Utilities, netOut.Utilities)
	check("verdicts", simOut.Verdicts, netOut.Verdicts)
	check("transcript", simOut.Transcript, netOut.Transcript)

	report := netRoundReport{
		Network:   o.network,
		Seed:      o.seed,
		W:         w,
		Payments:  netOut.Payments,
		Fines:     netOut.Fines,
		Utilities: netOut.Utilities,
		Makespan:  netOut.Makespan,
		Dropped:   medium.Stats().Dropped,
		Parity:    "ok",
	}
	if len(diverged) > 0 {
		report.Parity = "FAIL"
		report.Diverged = diverged
	}
	enc := json.NewEncoder(os.Stdout)
	if err := enc.Encode(report); err != nil {
		return fail(err)
	}
	if report.Parity != "ok" {
		fmt.Fprintf(os.Stderr, "dls-serve: net-round: parity FAIL (%s)\n", strings.Join(diverged, ", "))
		return 1
	}
	return 0
}

// awaitPeers pings every remote node of the peer table until all answer
// or the deadline passes — worker processes may still be binding their
// sockets when the driver starts.
func awaitPeers(m *netbus.Medium, cfg *netbus.Config, local string, patience time.Duration) error {
	deadline := time.Now().Add(patience)
	for name := range cfg.Nodes {
		if name == local {
			continue
		}
		for {
			err := m.Ping(name)
			if err == nil {
				break
			}
			if time.Now().After(deadline) {
				return fmt.Errorf("node %q not answering pings: %w", name, err)
			}
		}
	}
	return nil
}

// parseW parses a comma-separated list of w_i work parameters.
func parseW(s string) ([]float64, error) {
	parts := strings.Split(s, ",")
	out := make([]float64, 0, len(parts))
	for _, p := range parts {
		v, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
		if err != nil {
			return nil, fmt.Errorf("parsing w %q: %w", p, err)
		}
		out = append(out, v)
	}
	return out, nil
}
