// Command dls-serve runs the DLS-BL-NCP scheduling service: a
// long-running HTTP daemon that keeps named processor pools (and their
// reputation state and warm Ed25519 keyrings) alive between requests,
// runs submitted jobs through a bounded worker pool with per-pool
// serialization, and streams results back as NDJSON.
//
// Usage:
//
//	dls-serve -addr :8080
//	dls-serve -addr :8080 -workers 8 -queue 512 -pools pools.json
//
// With no -pools file a single demo pool named "default" (ncp-fe,
// w = 1,1.5,2,2.5) is created. pools.json is a JSON array of pool specs:
//
//	[{"name":"alpha","network":"ncp-fe","w":[1,2,3],"policy":"ban-deviants"}]
//
// See the README's "Service mode" section for a curl walkthrough.
// SIGINT/SIGTERM drain gracefully: in-flight and queued jobs finish,
// new submissions get 503, then the process exits.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"dlsbl/internal/service"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	workers := flag.Int("workers", 0, "max concurrent protocol runs (0 = GOMAXPROCS)")
	queue := flag.Int("queue", 256, "job queue depth before submissions get 429")
	poolsPath := flag.String("pools", "", "JSON file with an array of pool specs (empty = one demo pool)")
	drainTimeout := flag.Duration("drain", 30*time.Second, "shutdown drain timeout")
	flag.Parse()

	specs, err := loadPools(*poolsPath)
	if err != nil {
		log.Fatal(err)
	}

	srv := service.New(service.Config{Workers: *workers, QueueDepth: *queue})
	for _, spec := range specs {
		if _, err := srv.CreatePool(spec); err != nil {
			log.Fatalf("creating pool %q: %v", spec.Name, err)
		}
		log.Printf("pool %q ready (m=%d)", spec.Name, len(spec.TrueW))
	}

	httpSrv := &http.Server{Addr: *addr, Handler: srv.Handler()}
	errc := make(chan error, 1)
	go func() { errc <- httpSrv.ListenAndServe() }()
	log.Printf("dls-serve listening on %s (%d pools, queue depth %d)", *addr, len(specs), *queue)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	select {
	case err := <-errc:
		log.Fatal(err)
	case <-ctx.Done():
	}
	log.Print("draining: refusing new submissions, finishing queued jobs")

	// Drain order matters: service.Close refuses new submissions and
	// finishes every admitted job, which unblocks the streaming handlers;
	// http.Shutdown then waits for those handlers to write their tails.
	done := make(chan struct{})
	go func() { srv.Close(); close(done) }()
	shutdownCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := httpSrv.Shutdown(shutdownCtx); err != nil {
		log.Printf("http shutdown: %v", err)
	}
	<-done
	log.Print("drained; bye")
}

func loadPools(path string) ([]service.PoolSpec, error) {
	if path == "" {
		return []service.PoolSpec{{
			Name:  "default",
			TrueW: []float64{1, 1.5, 2, 2.5},
		}}, nil
	}
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("reading pools file: %w", err)
	}
	var specs []service.PoolSpec
	if err := json.Unmarshal(data, &specs); err != nil {
		return nil, fmt.Errorf("parsing %s: %w", path, err)
	}
	if len(specs) == 0 {
		return nil, fmt.Errorf("%s: no pools", path)
	}
	return specs, nil
}
