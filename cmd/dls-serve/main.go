// Command dls-serve runs the DLS-BL-NCP scheduling service: a
// long-running HTTP daemon that keeps named processor pools (and their
// reputation state and warm Ed25519 keyrings) alive between requests,
// runs submitted jobs through a bounded worker pool with per-pool
// serialization, and streams results back as NDJSON.
//
// Usage:
//
//	dls-serve -addr :8080
//	dls-serve -addr :8080 -workers 8 -queue 512 -pools pools.json
//	dls-serve -addr :8080 -debug-addr 127.0.0.1:6060 -log-format json
//
// With no -pools file a single demo pool named "default" (ncp-fe,
// w = 1,1.5,2,2.5) is created. pools.json is a JSON array of pool specs:
//
//	[{"name":"alpha","network":"ncp-fe","w":[1,2,3],"policy":"ban-deviants"}]
//
// -debug-addr opens a SECOND listener serving net/http/pprof and expvar
// — kept off the API mux so profiling endpoints are never exposed on
// the service port; bind it to loopback. Logs are structured (log/slog);
// -log-format selects text (default) or json.
//
// See the README's "Service mode" section for a curl walkthrough.
// SIGINT/SIGTERM drain gracefully: in-flight and queued jobs finish,
// new submissions get 503, then the process exits.
//
// # Multi-process mode (-net-round)
//
// With -net-round the daemon is bypassed entirely: the process becomes
// the one-shot driver of a multi-process deployment. It dials the
// netbus as the -net-node entry of the -net-config peer table, waits
// for every dls-node worker to answer pings, then runs one full
// bid→allocate→compute→pay round whose control plane crosses real UDP
// sockets — and, as a built-in check, the same round on the in-process
// simulated bus with the same seed and keyring. It prints a JSON report
// with the payments and a parity verdict and exits non-zero if the two
// runs differ anywhere. See docs/DEPLOY.md for a loopback walkthrough.
//
// -net-trace FILE additionally records the driver's obs stream during
// the socket round, pulls each worker node's telemetry buffer over the
// wire afterwards (the nodes must run with -telemetry), and writes one
// clock-aligned Chrome trace with a track group per OS process to FILE
// — while the parity check against the untraced simulated run still
// holds, pinning the nil-parity contract across process boundaries.
package main

import (
	"context"
	"encoding/json"
	"expvar"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"dlsbl/internal/obs"
	"dlsbl/internal/service"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	debugAddr := flag.String("debug-addr", "", "debug listen address for pprof and expvar (empty = disabled; bind to loopback)")
	workers := flag.Int("workers", 0, "max concurrent protocol runs (0 = GOMAXPROCS)")
	queue := flag.Int("queue", 256, "job queue depth before submissions get 429")
	poolsPath := flag.String("pools", "", "JSON file with an array of pool specs (empty = one demo pool)")
	logFormat := flag.String("log-format", "text", "log output format: text or json")
	drainTimeout := flag.Duration("drain", 30*time.Second, "shutdown drain timeout")
	netRound := flag.Bool("net-round", false, "one-shot mode: drive one round over the UDP netbus, check parity against the simulated bus, print JSON, exit")
	netConfig := flag.String("net-config", "", "net-round: peer-table JSON file (see docs/DEPLOY.md)")
	netNode := flag.String("net-node", "serve", "net-round: this process's node name in the peer table")
	netNetwork := flag.String("net-network", "ncp-fe", "net-round: network class: ncp-fe or ncp-nfe")
	netW := flag.String("net-w", "1,1.5,2,2.5", "net-round: comma-separated true w_i work parameters")
	netZ := flag.Float64("net-z", 0.2, "net-round: per-unit bus transfer time z")
	netSeed := flag.Int64("net-seed", 7, "net-round: deterministic RNG seed")
	netTrace := flag.String("net-trace", "", "net-round: write a merged cross-process Chrome trace to this file (nodes must run with -telemetry)")
	flag.Parse()

	if *netRound {
		os.Exit(runNetRound(netRoundOpts{
			config:  *netConfig,
			node:    *netNode,
			network: *netNetwork,
			w:       *netW,
			z:       *netZ,
			seed:    *netSeed,
			trace:   *netTrace,
		}))
	}

	logger, err := newLogger(*logFormat)
	if err != nil {
		fmt.Fprintf(os.Stderr, "dls-serve: %v\n", err)
		os.Exit(1)
	}
	fatal := func(msg string, args ...any) {
		logger.Error(msg, args...)
		os.Exit(1)
	}

	specs, err := loadPools(*poolsPath)
	if err != nil {
		fatal("loading pools", "error", err)
	}

	srv := service.New(service.Config{Workers: *workers, QueueDepth: *queue, Logger: logger})
	for _, spec := range specs {
		if _, err := srv.CreatePool(spec); err != nil {
			fatal("creating pool", "pool", spec.Name, "error", err)
		}
	}

	httpSrv := &http.Server{Addr: *addr, Handler: srv.Handler()}
	errc := make(chan error, 1)
	go func() { errc <- httpSrv.ListenAndServe() }()

	var debugSrv *http.Server
	if *debugAddr != "" {
		debugSrv = &http.Server{Addr: *debugAddr, Handler: debugMux()}
		go func() {
			if err := debugSrv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
				logger.Error("debug server", "error", err)
			}
		}()
		logger.Info("debug endpoints up", "addr", *debugAddr,
			"paths", "/debug/pprof/, /debug/vars")
	}

	build := obs.Build()
	logger.Info("dls-serve listening",
		"addr", *addr, "pools", len(specs), "queue_depth", *queue,
		"go", build.GoVersion, "version", build.Version,
		"vcs_revision", build.VCSRevision, "vcs_modified", build.VCSModified)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	select {
	case err := <-errc:
		fatal("http server", "error", err)
	case <-ctx.Done():
	}
	logger.Info("draining", "detail", "refusing new submissions, finishing queued jobs")

	// Drain order matters: service.Close refuses new submissions and
	// finishes every admitted job, which unblocks the streaming handlers;
	// http.Shutdown then waits for those handlers to write their tails.
	done := make(chan struct{})
	go func() { srv.Close(); close(done) }()
	shutdownCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := httpSrv.Shutdown(shutdownCtx); err != nil {
		logger.Warn("http shutdown", "error", err)
	}
	if debugSrv != nil {
		_ = debugSrv.Shutdown(shutdownCtx)
	}
	<-done
	logger.Info("drained; bye")
}

func newLogger(format string) (*slog.Logger, error) {
	switch format {
	case "", "text":
		return slog.New(slog.NewTextHandler(os.Stderr, nil)), nil
	case "json":
		return slog.New(slog.NewJSONHandler(os.Stderr, nil)), nil
	default:
		return nil, fmt.Errorf("unknown -log-format %q (text or json)", format)
	}
}

// debugMux serves the opt-in diagnostics: net/http/pprof profiles and
// the expvar JSON dump. Registered by hand on a private mux (not
// http.DefaultServeMux) so importing pprof does not leak profiling
// endpoints onto the API listener.
func debugMux() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.Handle("/debug/vars", expvar.Handler())
	return mux
}

func loadPools(path string) ([]service.PoolSpec, error) {
	if path == "" {
		return []service.PoolSpec{{
			Name:  "default",
			TrueW: []float64{1, 1.5, 2, 2.5},
		}}, nil
	}
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("reading pools file: %w", err)
	}
	var specs []service.PoolSpec
	if err := json.Unmarshal(data, &specs); err != nil {
		return nil, fmt.Errorf("parsing %s: %w", path, err)
	}
	if len(specs) == 0 {
		return nil, fmt.Errorf("%s: no pools", path)
	}
	return specs, nil
}
