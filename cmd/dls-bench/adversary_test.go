package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

// TestAdversaryBenchMeetsTarget is the CI gate behind `make
// bench-adversary`: the seeded adversary tiers must leave every honest
// survivor set finishing its round and every framer convicted. It runs
// the real generator end to end and checks the written report, so the
// gate and the committed BENCH_ADVERSARY.json can never drift apart in
// shape.
func TestAdversaryBenchMeetsTarget(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH_ADVERSARY.json")
	if err := runAdversaryBench(42, path); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var report adversaryReport
	if err := json.Unmarshal(data, &report); err != nil {
		t.Fatal(err)
	}
	if !report.MeetsTarget {
		t.Fatalf("adversary gate failed:\n%s", data)
	}
	if len(report.Cases) != 6 {
		t.Fatalf("%d cases, want 6", len(report.Cases))
	}
	tiers := make(map[string]bool)
	for _, c := range report.Cases {
		tiers[c.Tier] = true
		if !c.Completed {
			t.Errorf("%s: honest survivors did not finish", c.Name)
		}
		if !c.OK {
			t.Errorf("%s: defensive outcome check failed (evicted=%v fined=%v)",
				c.Name, c.Evicted, c.Fined)
		}
	}
	for _, tier := range []string{"targeted-faults", "framing", "crash", "crash+failover"} {
		if !tiers[tier] {
			t.Errorf("tier %q not exercised", tier)
		}
	}
}

// TestFaultsBenchWritesReport keeps the -faults generator regression-
// tested: it must produce a well-formed report whose reliable baseline
// completed without retransmissions.
func TestFaultsBenchWritesReport(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH_FAULTS.json")
	if err := runFaultsBench(42, path); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var report faultReport
	if err := json.Unmarshal(data, &report); err != nil {
		t.Fatal(err)
	}
	if len(report.Cases) == 0 {
		t.Fatal("no fault cases recorded")
	}
	for _, c := range report.Cases {
		if c.Name == "protocol/reliable" {
			if !c.Completed || c.Retransmits != 0 {
				t.Errorf("reliable baseline: completed=%v retransmits=%d", c.Completed, c.Retransmits)
			}
		}
	}
}

// TestTraceBenchWritesChromeTrace smoke-tests the -trace mode: the
// canned faulty multiload session must produce a parsable Chrome
// trace-event array.
func TestTraceBenchWritesChromeTrace(t *testing.T) {
	path := filepath.Join(t.TempDir(), "TRACE.json")
	if err := runTraceBench(42, path); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var trace struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(data, &trace); err != nil {
		t.Fatalf("trace is not a Chrome trace object: %v", err)
	}
	if len(trace.TraceEvents) == 0 {
		t.Fatal("trace has no events")
	}
}

// TestMultiloadBenchPaymentParity regression-tests the -multiload
// generator: the amortized session must pay bit-identically to the
// per-job stream on every pool size, and the steady-state reuse round
// must move less traffic than the bidding round it amortizes.
func TestMultiloadBenchPaymentParity(t *testing.T) {
	if testing.Short() {
		t.Skip("multiload generator takes ~20s")
	}
	path := filepath.Join(t.TempDir(), "BENCH_MULTILOAD.json")
	if err := runMultiloadBench(42, path); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var report multiloadReport
	if err := json.Unmarshal(data, &report); err != nil {
		t.Fatal(err)
	}
	if !report.PayParity {
		t.Error("amortized payments diverged from the per-job stream")
	}
	if len(report.Cases) != 6 {
		t.Fatalf("%d cases, want 6", len(report.Cases))
	}
	for _, c := range report.Cases {
		if c.Name == "multiload/amortized" && c.ReuseRound >= c.BidRound {
			t.Errorf("m=%d: reuse round moved %d deliveries, bid round %d — nothing amortized",
				c.M, c.ReuseRound, c.BidRound)
		}
	}
}
