// Command dls-bench regenerates every experiment in the paper
// reproduction (E1…E12): the three execution-diagram figures and the
// empirical checks of every theorem and lemma. See DESIGN.md §4 for the
// experiment index and EXPERIMENTS.md for the recorded results.
//
// Usage:
//
//	dls-bench               # run everything
//	dls-bench -id E6        # run one experiment
//	dls-bench -seed 7       # change the reproducibility seed
//	dls-bench -list         # list experiments
//	dls-bench -json         # benchmark the payment paths → BENCH_PAYMENTS.json
//	dls-bench -faults       # benchmark the fault-tolerant transport → BENCH_FAULTS.json
//	dls-bench -multiload    # benchmark amortized bidding → BENCH_MULTILOAD.json
//	dls-bench -hotpath      # benchmark the envelope hot path → BENCH_HOTPATH.json
//	dls-bench -pipeline     # pipelined packing vs FIFO sweep → BENCH_PIPELINE.json
//	dls-bench -adversary    # Byzantine adversary tiers → BENCH_ADVERSARY.json
//	dls-bench -trace        # canned faulty multiload run → TRACE.json (chrome://tracing)
//	dls-bench -trend        # fold every BENCH_*.json into one trajectory report → TREND.json
package main

import (
	"flag"
	"fmt"
	"os"
	"sync"

	"dlsbl/internal/experiments"
)

func main() {
	id := flag.String("id", "", "run only this experiment (E1…E12, X1…)")
	seed := flag.Int64("seed", 42, "seed for randomized experiments")
	list := flag.Bool("list", false, "list experiments and exit")
	format := flag.String("format", "text", "output format: text or csv")
	outPath := flag.String("o", "", "write output to this file instead of stdout")
	parallel := flag.Bool("parallel", false, "run experiments concurrently (results still print in order)")
	jsonBench := flag.Bool("json", false, "benchmark the payment paths and write BENCH_PAYMENTS.json (honors -o)")
	faultsBench := flag.Bool("faults", false, "benchmark the fault-tolerant transport and write BENCH_FAULTS.json (honors -o)")
	multiloadBench := flag.Bool("multiload", false, "benchmark amortized multi-load bidding and write BENCH_MULTILOAD.json (honors -o)")
	hotpathBench := flag.Bool("hotpath", false, "benchmark batch verification and the zero-alloc envelope hot path and write BENCH_HOTPATH.json (honors -o)")
	pipelineBench := flag.Bool("pipeline", false, "benchmark pipelined cross-job packing against the FIFO runner and write BENCH_PIPELINE.json (honors -o)")
	adversaryBench := flag.Bool("adversary", false, "drive the Byzantine adversary tiers and write BENCH_ADVERSARY.json (honors -o)")
	traceBench := flag.Bool("trace", false, "run a canned faulty multiload session and write a Chrome trace to TRACE.json (honors -o)")
	trend := flag.Bool("trend", false, "fold every BENCH_*.json in -trend-dir into one trajectory report, TREND.json (honors -o)")
	trendDir := flag.String("trend-dir", ".", "directory scanned for BENCH_*.json by -trend")
	flag.Parse()

	if *jsonBench {
		path := "BENCH_PAYMENTS.json"
		if *outPath != "" {
			path = *outPath
		}
		if err := runJSONBench(*seed, path); err != nil {
			fmt.Fprintf(os.Stderr, "dls-bench: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if *faultsBench {
		path := "BENCH_FAULTS.json"
		if *outPath != "" {
			path = *outPath
		}
		if err := runFaultsBench(*seed, path); err != nil {
			fmt.Fprintf(os.Stderr, "dls-bench: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if *multiloadBench {
		path := "BENCH_MULTILOAD.json"
		if *outPath != "" {
			path = *outPath
		}
		if err := runMultiloadBench(*seed, path); err != nil {
			fmt.Fprintf(os.Stderr, "dls-bench: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if *hotpathBench {
		path := "BENCH_HOTPATH.json"
		if *outPath != "" {
			path = *outPath
		}
		if err := runHotpathBench(*seed, path); err != nil {
			fmt.Fprintf(os.Stderr, "dls-bench: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if *pipelineBench {
		path := "BENCH_PIPELINE.json"
		if *outPath != "" {
			path = *outPath
		}
		if err := runPipelineBench(*seed, path); err != nil {
			fmt.Fprintf(os.Stderr, "dls-bench: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if *adversaryBench {
		path := "BENCH_ADVERSARY.json"
		if *outPath != "" {
			path = *outPath
		}
		if err := runAdversaryBench(*seed, path); err != nil {
			fmt.Fprintf(os.Stderr, "dls-bench: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if *traceBench {
		path := "TRACE.json"
		if *outPath != "" {
			path = *outPath
		}
		if err := runTraceBench(*seed, path); err != nil {
			fmt.Fprintf(os.Stderr, "dls-bench: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if *trend {
		path := "TREND.json"
		if *outPath != "" {
			path = *outPath
		}
		if err := runTrend(*trendDir, path); err != nil {
			fmt.Fprintf(os.Stderr, "dls-bench: %v\n", err)
			os.Exit(1)
		}
		return
	}

	if *format != "text" && *format != "csv" {
		fmt.Fprintf(os.Stderr, "dls-bench: unknown format %q (want text or csv)\n", *format)
		os.Exit(2)
	}
	out := os.Stdout
	if *outPath != "" {
		f, err := os.Create(*outPath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "dls-bench: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		out = f
	}

	if *list {
		for _, e := range experiments.All() {
			fmt.Printf("%-4s %s\n", e.ID, e.Title)
		}
		return
	}

	var toRun []experiments.Experiment
	if *id != "" {
		e, ok := experiments.ByID(*id)
		if !ok {
			fmt.Fprintf(os.Stderr, "dls-bench: unknown experiment %q (use -list)\n", *id)
			os.Exit(2)
		}
		toRun = []experiments.Experiment{e}
	} else {
		toRun = experiments.All()
	}

	type slot struct {
		res experiments.Result
		err error
	}
	results := make([]slot, len(toRun))
	if *parallel {
		var wg sync.WaitGroup
		for i, e := range toRun {
			wg.Add(1)
			go func(i int, e experiments.Experiment) {
				defer wg.Done()
				results[i].res, results[i].err = e.Run(*seed)
			}(i, e)
		}
		wg.Wait()
	} else {
		for i, e := range toRun {
			results[i].res, results[i].err = e.Run(*seed)
		}
	}
	for i, e := range toRun {
		if results[i].err != nil {
			fmt.Fprintf(os.Stderr, "dls-bench: %s failed: %v\n", e.ID, results[i].err)
			os.Exit(1)
		}
		switch *format {
		case "csv":
			fmt.Fprintln(out, results[i].res.CSV())
		default:
			fmt.Fprintln(out, results[i].res.String())
		}
	}
}
