package main

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"time"

	"dlsbl/internal/core"
	"dlsbl/internal/dlt"
	"dlsbl/internal/protocol"
)

func newSeededRng(seed int64, m int) *rand.Rand {
	return rand.New(rand.NewSource(seed + int64(m)))
}

// The -json mode benchmarks the payment computation paths directly —
// the O(m) prefix/suffix engine (zero-alloc RunInto and the Outcome-
// allocating Run) against the retained O(m²) naive re-solve — plus the
// end-to-end protocol (whose payment phase uses the engine), and writes
// the measurements to BENCH_PAYMENTS.json for regression tracking.

type benchCase struct {
	Name        string  `json:"name"`
	M           int     `json:"m"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op"`
	MsgUnits    int     `json:"msg_units,omitempty"`
	Iterations  int     `json:"iterations"`
}

type benchReport struct {
	Tool       string      `json:"tool"`
	Seed       int64       `json:"seed"`
	GoVersion  string      `json:"go_version"`
	GOMAXPROCS int         `json:"gomaxprocs"`
	Cases      []benchCase `json:"cases"`
}

// measure times f in a calibrated loop and reports per-op wall time and
// heap traffic. It is intentionally simple (single sample, MemStats
// delta) — the goal is regression-visible orders of magnitude, not
// statistics; use `go test -bench` for careful numbers.
func measure(f func() error) (benchCase, error) {
	var c benchCase
	// Warm-up + calibration.
	start := time.Now()
	if err := f(); err != nil {
		return c, err
	}
	once := time.Since(start)
	n := int(50 * time.Millisecond / (once + 1))
	if n < 10 {
		n = 10
	}
	if n > 2_000_000 {
		n = 2_000_000
	}

	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	start = time.Now()
	for i := 0; i < n; i++ {
		if err := f(); err != nil {
			return c, err
		}
	}
	elapsed := time.Since(start)
	runtime.ReadMemStats(&after)

	c.Iterations = n
	c.NsPerOp = float64(elapsed.Nanoseconds()) / float64(n)
	c.AllocsPerOp = float64(after.Mallocs-before.Mallocs) / float64(n)
	c.BytesPerOp = float64(after.TotalAlloc-before.TotalAlloc) / float64(n)
	return c, nil
}

func runJSONBench(seed int64, path string) error {
	report := benchReport{
		Tool:       "dls-bench -json",
		Seed:       seed,
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
	}
	add := func(name string, m int, f func() error) error {
		c, err := measure(f)
		if err != nil {
			return fmt.Errorf("%s/m=%d: %w", name, m, err)
		}
		c.Name, c.M = name, m
		report.Cases = append(report.Cases, c)
		return nil
	}

	for _, m := range []int{4, 16, 64, 512, 4096} {
		in := dlt.DefaultRandomInstance(newSeededRng(seed, m), dlt.NCPFE, m)
		exec := core.TruthfulExec(in.W)

		eng := core.NewPaymentEngine(in.Network, in.Z)
		var out core.Outcome
		if err := eng.RunInto(in.W, exec, core.WithVerification, &out); err != nil {
			return err
		}
		if err := add("engine/RunInto", m, func() error {
			return eng.RunInto(in.W, exec, core.WithVerification, &out)
		}); err != nil {
			return err
		}

		mech := core.Mechanism{Network: in.Network, Z: in.Z}
		if err := add("mechanism/Run", m, func() error {
			_, err := mech.Run(in.W, exec)
			return err
		}); err != nil {
			return err
		}

		// The naive quadratic baseline is minutes-scale past m ≈ 1000;
		// keep it to sizes where it terminates promptly.
		if m <= 512 {
			if err := add("mechanism/RunNaive", m, func() error {
				_, err := mech.RunNaive(in.W, exec)
				return err
			}); err != nil {
				return err
			}
		}
	}

	// End-to-end decentralized protocol: ns/op plus the bus traffic its
	// payment phase generates (Theorem 5.4's Θ(m²) message units).
	for _, m := range []int{4, 16, 64} {
		in := dlt.DefaultRandomInstance(newSeededRng(seed, m), dlt.NCPFE, m)
		cfg := protocol.Config{Network: dlt.NCPFE, Z: in.Z, TrueW: in.W, Seed: seed, NBlocks: 8 * m}
		var units int
		if err := add("protocol/Run", m, func() error {
			o, err := protocol.Run(cfg)
			if err == nil {
				units = o.BusStats.Units
			}
			return err
		}); err != nil {
			return err
		}
		report.Cases[len(report.Cases)-1].MsgUnits = units
	}

	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return err
	}
	fmt.Printf("dls-bench: wrote %d benchmark cases to %s\n", len(report.Cases), path)
	return nil
}
