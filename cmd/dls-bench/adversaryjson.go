package main

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"

	"dlsbl/internal/adversarytest"
	"dlsbl/internal/dlt"
	"dlsbl/internal/obs"
	"dlsbl/internal/protocol"
	"dlsbl/internal/referee"
)

// The -adversary mode drives the seeded Byzantine adversary tiers
// (internal/adversarytest) through the full protocol and writes
// BENCH_ADVERSARY.json: per-tier wall time plus the defensive outcome —
// who survived, who was evicted, who was fined. MeetsTarget is the CI
// gate: every honest survivor set completes its round, and the framer is
// convicted in every framing case; any run where an adversary stops the
// honest pool or an honest processor pays a fine fails the build.

type adversaryCase struct {
	Name    string  `json:"name"`
	Tier    string  `json:"tier"`
	M       int     `json:"m"`
	NsPerOp float64 `json:"ns_per_op"`

	Completed  bool     `json:"completed"`
	Evicted    []string `json:"evicted,omitempty"`
	Fined      []string `json:"fined,omitempty"`
	OK         bool     `json:"ok"`
	Iterations int      `json:"iterations"`
}

type adversaryReport struct {
	Tool       string          `json:"tool"`
	Seed       int64           `json:"seed"`
	GoVersion  string          `json:"go_version"`
	GOMAXPROCS int             `json:"gomaxprocs"`
	Cases      []adversaryCase `json:"cases"`
	// MeetsTarget: in every case the honest survivors finished the round
	// and no honest processor was fined; in every framing case the
	// framer was convicted and its rival kept its seat.
	MeetsTarget bool `json:"meets_target"`
}

func runAdversaryBench(seed int64, path string) error {
	report := adversaryReport{
		Tool:        "dls-bench -adversary",
		Seed:        seed,
		GoVersion:   runtime.Version(),
		GOMAXPROCS:  runtime.GOMAXPROCS(0),
		MeetsTarget: true,
	}

	const m = 6
	in := dlt.DefaultRandomInstance(newSeededRng(seed, m), dlt.NCPFE, m)
	base := protocol.Config{Network: dlt.NCPFE, Z: in.Z, TrueW: in.W, Seed: seed, NBlocks: 8 * m}
	thresh := referee.CorroborationThreshold(m)
	victim := adversarytest.ProcID(m - 1)
	receivers := func(n int) []string {
		var ids []string
		for i := 0; i < n; i++ {
			ids = append(ids, adversarytest.ProcID(i))
		}
		return ids
	}

	cases := []struct {
		name, tier string
		cfg        func() protocol.Config
		// ok judges the defensive outcome beyond bare completion.
		ok func(out *protocol.Outcome) bool
	}{
		{"adversary/drop-below-threshold", "targeted-faults",
			func() protocol.Config {
				cfg := base
				cfg.Faults = adversarytest.Blackhole(seed, victim, receivers(thresh-1)...)
				return cfg
			},
			func(out *protocol.Outcome) bool { return len(out.Evictions) == 0 }},
		{"adversary/drop-at-threshold", "targeted-faults",
			func() protocol.Config {
				cfg := base
				cfg.Faults = adversarytest.Blackhole(seed, victim, receivers(thresh)...)
				return cfg
			},
			func(out *protocol.Outcome) bool {
				return len(out.Evictions) == 1 && out.Evictions[0].Proc == victim
			}},
		{"adversary/random-pairs", "targeted-faults",
			func() protocol.Config {
				cfg := base
				cfg.Faults = adversarytest.RandomPairs(seed, m, 4, 0.8)
				return cfg
			},
			func(out *protocol.Outcome) bool { return true }},
		{"adversary/framing", "framing",
			func() protocol.Config {
				cfg := base
				cfg.Behaviors = adversarytest.Framing(m, 0)
				return cfg
			},
			func(out *protocol.Outcome) bool {
				rival := adversarytest.FramingRival(m, 0)
				return !out.Evicted[rival] && out.Fines[0] > 0
			}},
		{"adversary/crash-processing", "crash",
			func() protocol.Config {
				cfg := base
				cfg.Faults = adversarytest.CrashPlan(seed, 0, victim)
				return cfg
			},
			func(out *protocol.Outcome) bool {
				return len(out.Evictions) == 1 && out.Evictions[0].Proc == victim
			}},
		{"adversary/crash-plus-failover", "crash+failover",
			func() protocol.Config {
				cfg := base
				cfg.Standby = true
				cfg.FailoverIn = obs.PhaseProcessing
				cfg.Faults = adversarytest.CrashPlan(seed, 0, victim)
				return cfg
			},
			func(out *protocol.Outcome) bool {
				return referee.VerifyEntries(out.Transcript) == nil
			}},
	}

	for _, tc := range cases {
		cfg := tc.cfg()
		var last *protocol.Outcome
		c, err := measure(func() error {
			o, err := protocol.Run(cfg)
			if err == nil {
				last = o
			}
			return err
		})
		if err != nil {
			return fmt.Errorf("%s: %w", tc.name, err)
		}
		ac := adversaryCase{
			Name: tc.name, Tier: tc.tier, M: m,
			NsPerOp: c.NsPerOp, Iterations: c.Iterations,
			Completed: last.Completed,
		}
		for _, ev := range last.Evictions {
			ac.Evicted = append(ac.Evicted, ev.Proc)
		}
		honestFined := false
		for i, fine := range last.Fines {
			if fine > 0 {
				ac.Fined = append(ac.Fined, last.Procs[i])
				if len(cfg.Behaviors) == 0 || !cfg.Behaviors[i].FrameRival {
					honestFined = true
				}
			}
		}
		ac.OK = last.Completed && !honestFined && tc.ok(last)
		if !ac.OK {
			report.MeetsTarget = false
		}
		report.Cases = append(report.Cases, ac)
	}

	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return err
	}
	fmt.Printf("dls-bench: wrote %d adversary cases to %s (meets_target=%v)\n",
		len(report.Cases), path, report.MeetsTarget)
	return nil
}
