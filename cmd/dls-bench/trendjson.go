package main

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
)

// The -trend mode folds every BENCH_*.json sibling report into one
// machine-readable trajectory document, TREND.json. Each bench mode
// writes its own file with its own case schema; the trend report
// normalizes them into flat metric points (suite, case label, metric
// name, value) so a dashboard — or a later dls-bench run diffing two
// TREND.json files — can track the whole performance surface without
// knowing any per-suite schema. Gate booleans (meets_target,
// payments_identical) are lifted to the top so a single grep answers
// "is every bench gate green".

// trendMetric is one numeric measurement lifted out of a bench case.
type trendMetric struct {
	Case   string  `json:"case"`
	Metric string  `json:"metric"`
	Value  float64 `json:"value"`
}

// trendSuite summarizes one BENCH_*.json file.
type trendSuite struct {
	File    string          `json:"file"`
	Tool    string          `json:"tool,omitempty"`
	Seed    int64           `json:"seed,omitempty"`
	Cases   int             `json:"cases"`
	Gates   map[string]bool `json:"gates,omitempty"`
	Metrics []trendMetric   `json:"metrics"`
}

// trendReport is the TREND.json document.
type trendReport struct {
	Tool       string       `json:"tool"`
	GoVersion  string       `json:"go_version"`
	GOMAXPROCS int          `json:"gomaxprocs"`
	Suites     []trendSuite `json:"suites"`
	Metrics    int          `json:"metrics_total"`
	GatesOK    bool         `json:"gates_ok"`
}

// trendLabelKeys are the case fields that identify a case rather than
// measure it; they join the case's name into its label, in this order.
var trendLabelKeys = []string{"tier", "policy", "m", "k", "d", "r", "drop", "duplicate"}

// caseLabel renders a stable label like "mechanism/Run{m=16}" from a
// case object's identifying fields.
func caseLabel(c map[string]any) string {
	name, _ := c["name"].(string)
	var parts []string
	for _, k := range trendLabelKeys {
		v, ok := c[k]
		if !ok {
			continue
		}
		switch x := v.(type) {
		case string:
			parts = append(parts, fmt.Sprintf("%s=%s", k, x))
		case float64:
			parts = append(parts, fmt.Sprintf("%s=%g", k, x))
		case bool:
			parts = append(parts, fmt.Sprintf("%s=%t", k, x))
		}
	}
	if len(parts) == 0 {
		return name
	}
	return name + "{" + strings.Join(parts, ",") + "}"
}

// isLabelKey reports whether k identifies a case instead of measuring it.
func isLabelKey(k string) bool {
	if k == "name" {
		return true
	}
	for _, lk := range trendLabelKeys {
		if k == lk {
			return true
		}
	}
	return false
}

// trendSuiteFrom flattens one parsed BENCH_*.json document.
func trendSuiteFrom(file string, doc map[string]any) trendSuite {
	s := trendSuite{File: filepath.Base(file)}
	if t, ok := doc["tool"].(string); ok {
		s.Tool = t
	}
	if v, ok := doc["seed"].(float64); ok {
		s.Seed = int64(v)
	}
	// Top-level booleans are gates (meets_target, payments_identical, …).
	for k, v := range doc {
		if b, ok := v.(bool); ok {
			if s.Gates == nil {
				s.Gates = make(map[string]bool)
			}
			s.Gates[k] = b
		}
	}
	cases, _ := doc["cases"].([]any)
	s.Cases = len(cases)
	for _, raw := range cases {
		c, ok := raw.(map[string]any)
		if !ok {
			continue
		}
		label := caseLabel(c)
		keys := make([]string, 0, len(c))
		for k := range c {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			if isLabelKey(k) {
				continue
			}
			if v, ok := c[k].(float64); ok {
				s.Metrics = append(s.Metrics, trendMetric{Case: label, Metric: k, Value: v})
			}
		}
	}
	return s
}

// runTrend reads every BENCH_*.json in dir and writes the folded
// trajectory report to path. A missing bench file is not an error — the
// trend covers whatever reports exist — but zero reports is.
func runTrend(dir, path string) error {
	files, err := filepath.Glob(filepath.Join(dir, "BENCH_*.json"))
	if err != nil {
		return err
	}
	sort.Strings(files)
	if len(files) == 0 {
		return fmt.Errorf("trend: no BENCH_*.json files in %s (run the bench modes first, e.g. make bench-json)", dir)
	}
	report := trendReport{
		Tool:       "dls-bench -trend",
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		GatesOK:    true,
	}
	for _, f := range files {
		data, err := os.ReadFile(f)
		if err != nil {
			return err
		}
		var doc map[string]any
		if err := json.Unmarshal(data, &doc); err != nil {
			return fmt.Errorf("trend: parsing %s: %w", f, err)
		}
		s := trendSuiteFrom(f, doc)
		for _, ok := range s.Gates {
			if !ok {
				report.GatesOK = false
			}
		}
		report.Metrics += len(s.Metrics)
		report.Suites = append(report.Suites, s)
	}
	out, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(out, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("trend: %d suites, %d metric points, gates_ok=%t → %s\n",
		len(report.Suites), report.Metrics, report.GatesOK, path)
	return nil
}
