package main

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"

	"dlsbl/internal/bus"
	"dlsbl/internal/dlt"
	"dlsbl/internal/protocol"
)

// The -faults mode measures the reliable-transport layer end-to-end and
// writes BENCH_FAULTS.json (sibling of BENCH_PAYMENTS.json): for each
// point on a link-degradation sweep it records the run's wall time plus
// the retransmission/eviction counters, and it times the nil-plan path
// against the faulty path so the zero-overhead claim for the reliable
// bus stays regression-visible.

type faultCase struct {
	Name    string  `json:"name"`
	M       int     `json:"m"`
	Drop    float64 `json:"drop"`
	Dup     float64 `json:"duplicate"`
	NsPerOp float64 `json:"ns_per_op"`

	Completed   bool `json:"completed"`
	Evictions   int  `json:"evictions"`
	Retransmits int  `json:"retransmits"`
	DupDiscards int  `json:"dup_discards"`
	Corrupt     int  `json:"corrupt_discards"`
	Timeouts    int  `json:"timeouts"`
	BusDropped  int  `json:"bus_dropped"`
	BusDup      int  `json:"bus_duplicated"`
	Iterations  int  `json:"iterations"`
}

type faultReport struct {
	Tool       string      `json:"tool"`
	Seed       int64       `json:"seed"`
	GoVersion  string      `json:"go_version"`
	GOMAXPROCS int         `json:"gomaxprocs"`
	Cases      []faultCase `json:"cases"`
}

func runFaultsBench(seed int64, path string) error {
	report := faultReport{
		Tool:       "dls-bench -faults",
		Seed:       seed,
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
	}

	for _, m := range []int{4, 16} {
		in := dlt.DefaultRandomInstance(newSeededRng(seed, m), dlt.NCPFE, m)
		base := protocol.Config{Network: dlt.NCPFE, Z: in.Z, TrueW: in.W, Seed: seed, NBlocks: 8 * m}

		sweep := []struct {
			name string
			plan *bus.FaultPlan
		}{
			{"protocol/reliable", nil},
			{"protocol/drop05", &bus.FaultPlan{Seed: seed, Drop: 0.05}},
			{"protocol/drop10-dup05", &bus.FaultPlan{Seed: seed, Drop: 0.10, Duplicate: 0.05}},
			{"protocol/drop20-mixed", &bus.FaultPlan{Seed: seed, Drop: 0.20, Duplicate: 0.10, Delay: 0.10, Corrupt: 0.05}},
			{"protocol/crash-one", &bus.FaultPlan{Seed: seed, Unresponsive: []string{fmt.Sprintf("P%d", m)}}},
		}
		for _, s := range sweep {
			cfg := base
			cfg.Faults = s.plan
			var last *protocol.Outcome
			c, err := measure(func() error {
				o, err := protocol.Run(cfg)
				if err == nil {
					last = o
				}
				return err
			})
			if err != nil {
				return fmt.Errorf("%s/m=%d: %w", s.name, m, err)
			}
			c.Name, c.M = s.name, m
			fc := faultCase{
				Name: c.Name, M: m, NsPerOp: c.NsPerOp, Iterations: c.Iterations,
				Completed:   last.Completed,
				Evictions:   last.Fault.Evictions,
				Retransmits: last.Fault.Retransmits,
				DupDiscards: last.Fault.DupDiscards,
				Corrupt:     last.Fault.CorruptDiscards,
				Timeouts:    last.Fault.Timeouts,
				BusDropped:  last.BusStats.Dropped,
				BusDup:      last.BusStats.Duplicated,
			}
			if s.plan != nil {
				fc.Drop, fc.Dup = s.plan.Drop, s.plan.Duplicate
			}
			report.Cases = append(report.Cases, fc)
		}
	}

	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return err
	}
	fmt.Printf("dls-bench: wrote %d fault benchmark cases to %s\n", len(report.Cases), path)
	return nil
}
