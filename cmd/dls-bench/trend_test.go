package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

func writeBench(t *testing.T, dir, name, body string) {
	t.Helper()
	if err := os.WriteFile(filepath.Join(dir, name), []byte(body), 0o644); err != nil {
		t.Fatal(err)
	}
}

func TestRunTrendFoldsBenchReports(t *testing.T) {
	dir := t.TempDir()
	writeBench(t, dir, "BENCH_ALPHA.json", `{
		"tool": "dls-bench -alpha", "seed": 7, "meets_target": true,
		"cases": [
			{"name": "reuse", "m": 16, "ns_per_op": 1200.5, "allocs": 0},
			{"name": "cold", "policy": "equal", "ns_per_op": 4800}
		]}`)
	writeBench(t, dir, "BENCH_BETA.json", `{
		"tool": "dls-bench -beta", "payments_identical": false,
		"cases": [{"name": "soak", "p99_ms": 4.2}]}`)

	out := filepath.Join(dir, "TREND.json")
	if err := runTrend(dir, out); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var report trendReport
	if err := json.Unmarshal(data, &report); err != nil {
		t.Fatalf("TREND.json is not valid JSON: %v", err)
	}
	if len(report.Suites) != 2 {
		t.Fatalf("folded %d suites, want 2", len(report.Suites))
	}
	alpha := report.Suites[0]
	if alpha.File != "BENCH_ALPHA.json" || alpha.Tool != "dls-bench -alpha" || alpha.Seed != 7 {
		t.Fatalf("alpha suite header = %+v", alpha)
	}
	if !alpha.Gates["meets_target"] {
		t.Fatalf("alpha gates = %v, want meets_target lifted", alpha.Gates)
	}
	// Label keys (m, policy) identify; numeric leaves measure.
	want := map[string]float64{
		"reuse{m=16}/ns_per_op":        1200.5,
		"reuse{m=16}/allocs":           0,
		"cold{policy=equal}/ns_per_op": 4800,
	}
	got := map[string]float64{}
	for _, p := range alpha.Metrics {
		got[p.Case+"/"+p.Metric] = p.Value
	}
	for k, v := range want {
		if got[k] != v {
			t.Fatalf("metric %q = %v, want %v (all: %v)", k, got[k], v, got)
		}
	}
	if report.Metrics != len(alpha.Metrics)+len(report.Suites[1].Metrics) {
		t.Fatalf("metrics_total %d does not sum the suites", report.Metrics)
	}
	// One false gate anywhere turns the top-level verdict off.
	if report.GatesOK {
		t.Fatal("gates_ok true despite payments_identical=false in beta")
	}
}

func TestRunTrendNoReports(t *testing.T) {
	dir := t.TempDir()
	if err := runTrend(dir, filepath.Join(dir, "TREND.json")); err == nil {
		t.Fatal("zero BENCH_*.json files should be an error")
	}
}
