package main

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"runtime"

	"dlsbl/internal/dlt"
	"dlsbl/internal/pipeline"
	"dlsbl/internal/protocol"
	"dlsbl/internal/sig"
)

// The -pipeline mode records the pipelined scheduler's throughput case
// and writes BENCH_PIPELINE.json (sibling of BENCH_MULTILOAD.json): on
// the default m=16, z=0.1 pool it sweeps batch depth D and installment
// count R, packing D loads' installment waves into one shared bus
// schedule (pipeline.Pack) and comparing against the FIFO runner serving
// the same loads back to back at their single-round optima. The R=1 rows
// are the saturation control — single-round optimal splits keep the
// NCP-FE originator 100% busy, so packing them cannot beat FIFO — and
// MeetsTarget records whether the pipelined schedule clears the 1.3×
// bar at D >= 4. One end-to-end case replays D=4, R=4 through the live
// protocol (BidSession + signed installment sub-rounds) and is wall-clock
// timed, so the JSON pins both the model-level speedup and the cost of
// buying it through the mechanism.

type pipelineCase struct {
	Name   string `json:"name"`
	D      int    `json:"d"`
	R      int    `json:"r"`
	Policy string `json:"policy"`

	FIFOTotal      float64 `json:"fifo_total"`
	PackedMakespan float64 `json:"packed_makespan"`
	Speedup        float64 `json:"speedup"`

	// Only the live protocol case is wall-clock timed.
	NsPerOp float64 `json:"ns_per_op,omitempty"`
	BytesOp float64 `json:"bytes_per_op,omitempty"`
	Iters   int     `json:"iterations,omitempty"`
}

type pipelineReport struct {
	Tool       string  `json:"tool"`
	Seed       int64   `json:"seed"`
	GoVersion  string  `json:"go_version"`
	GOMAXPROCS int     `json:"gomaxprocs"`
	M          int     `json:"m"`
	Z          float64 `json:"z"`
	// MeetsTarget: every fully pipelined case (R = 4) at batch depth
	// D >= 4 — including the live protocol replay — reached speedup
	// >= 1.3 over the FIFO baseline.
	MeetsTarget bool           `json:"meets_target"`
	Cases       []pipelineCase `json:"cases"`
}

func runPipelineBench(seed int64, path string) error {
	const m, z = 16, 0.1
	rng := rand.New(rand.NewSource(seed))
	w := make([]float64, m)
	for i := range w {
		w[i] = 1 + rng.Float64()
	}
	in := dlt.Instance{Network: dlt.NCPFE, Z: z, W: w}

	report := pipelineReport{
		Tool:        "dls-bench -pipeline",
		Seed:        seed,
		GoVersion:   runtime.Version(),
		GOMAXPROCS:  runtime.GOMAXPROCS(0),
		M:           m,
		Z:           z,
		MeetsTarget: true,
	}

	single, err := dlt.Optimal(in)
	if err != nil {
		return err
	}
	balanced, err := dlt.PipelinedAllocation(in)
	if err != nil {
		return err
	}
	for _, d := range []int{1, 2, 4, 8} {
		for _, r := range []int{1, 2, 4} {
			alloc, policy := balanced, "geometric"
			if r == 1 {
				alloc, policy = single, "single"
			}
			jobs := make([]pipeline.Job, d)
			for j := range jobs {
				jobs[j] = pipeline.Job{
					ID:     fmt.Sprintf("job%d", j+1),
					Exec:   append([]float64(nil), w...),
					Alloc:  alloc,
					Rounds: r,
					Policy: dlt.GeometricRounds,
				}
			}
			plan, err := pipeline.Pack(dlt.NCPFE, z, jobs)
			if err != nil {
				return fmt.Errorf("pack d=%d r=%d: %w", d, r, err)
			}
			s := plan.Speedup()
			if d >= 4 && r == 4 && s < 1.3 {
				report.MeetsTarget = false
			}
			report.Cases = append(report.Cases, pipelineCase{
				Name: "pipeline/packed", D: d, R: r, Policy: policy,
				FIFOTotal: plan.FIFOTotal, PackedMakespan: plan.Makespan, Speedup: s,
			})
		}
	}

	// End-to-end: the D=4, R=4 cell bought through the live protocol —
	// four loads served as signed installment sub-rounds off one cached
	// bid, packed from their realized outcomes.
	const liveD, liveR = 4, 4
	keys := sig.NewKeyring()
	live := func() (pipeline.Plan, error) {
		sess, err := protocol.NewBidSession(protocol.Config{
			Network: dlt.NCPFE, Z: z, TrueW: w, Keys: keys,
		})
		if err != nil {
			return pipeline.Plan{}, err
		}
		jobs := make([]pipeline.Job, liveD)
		for j := range jobs {
			out, err := pipeline.RunLoad(sess, pipeline.Load{
				Job:    protocol.JobConfig{Seed: seed + int64(j), NBlocks: 8 * m},
				Rounds: liveR,
				Policy: dlt.GeometricRounds,
			})
			if err != nil {
				return pipeline.Plan{}, err
			}
			if !out.Completed {
				return pipeline.Plan{}, fmt.Errorf("live load %d terminated in %s", j+1, out.TerminatedIn)
			}
			jobs[j], err = pipeline.JobFromOutcome(fmt.Sprintf("live%d", j+1), out, liveR, dlt.GeometricRounds)
			if err != nil {
				return pipeline.Plan{}, err
			}
		}
		return pipeline.Pack(dlt.NCPFE, z, jobs)
	}
	plan, err := live()
	if err != nil {
		return fmt.Errorf("live protocol: %w", err)
	}
	lc, err := measure(func() error { _, err := live(); return err })
	if err != nil {
		return fmt.Errorf("live protocol: %w", err)
	}
	report.Cases = append(report.Cases, pipelineCase{
		Name: "pipeline/live-protocol", D: liveD, R: liveR, Policy: "geometric",
		FIFOTotal: plan.FIFOTotal, PackedMakespan: plan.Makespan, Speedup: plan.Speedup(),
		NsPerOp: lc.NsPerOp, BytesOp: lc.BytesPerOp, Iters: lc.Iterations,
	})
	if plan.Speedup() < 1.3 {
		report.MeetsTarget = false
	}

	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return err
	}
	fmt.Printf("dls-bench: wrote %d pipeline benchmark cases to %s (meets 1.3x target at D>=4: %v)\n",
		len(report.Cases), path, report.MeetsTarget)
	return nil
}
