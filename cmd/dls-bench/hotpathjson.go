package main

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"runtime"
	"runtime/debug"
	"sort"
	"time"

	"dlsbl/internal/dlt"
	"dlsbl/internal/protocol"
	"dlsbl/internal/referee"
	"dlsbl/internal/service"
	"dlsbl/internal/sig"
)

// The -hotpath mode benchmarks the verification + codec fast path and
// writes BENCH_HOTPATH.json: for each pool size it founds two identical
// BidSessions — the legacy arm (JSON codec, memoization disabled) and the
// hot arm (binary codec, verified-envelope memo) — measures the
// steady-state reuse-round ns_per_op of each, re-checks payment parity
// across the arms, reports the micro allocs/op of the envelope hot path,
// and finishes with a sustained service soak (rounds/min, p99 round
// latency) through a multiload pool running the hot path end to end.

type hotpathCase struct {
	Name    string  `json:"name"`
	M       int     `json:"m"`
	K       int     `json:"k"`
	NsPerOp float64 `json:"ns_per_op"` // one steady-state reuse round
	BytesOp float64 `json:"bytes_per_op"`
	Iters   int     `json:"iterations"`
	// StreamNsPerOp is one whole k-job stream (bid round + k−1 reuse
	// rounds), the unit BENCH_MULTILOAD reports.
	StreamNsPerOp float64 `json:"stream_ns_per_op"`
}

type hotpathAllocs struct {
	// All four must stay at 0; TestHotPathAllocs and TestBinaryCodecAllocs
	// guard the same numbers in CI.
	SealInto      float64 `json:"seal_into"`
	MemoHitVerify float64 `json:"memo_hit_verify"`
	BinaryEncode  float64 `json:"binary_encode"`
	BinaryDecode  float64 `json:"binary_decode"`
}

type hotpathSoak struct {
	M          int     `json:"m"`
	Jobs       int     `json:"jobs"`
	Seconds    float64 `json:"seconds"`
	RoundsMin  float64 `json:"rounds_per_min"`
	P50RoundMS float64 `json:"p50_round_ms"`
	P99RoundMS float64 `json:"p99_round_ms"`
}

type hotpathReport struct {
	Tool       string `json:"tool"`
	Seed       int64  `json:"seed"`
	GoVersion  string `json:"go_version"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	K          int    `json:"k"`
	PayParity  bool   `json:"payments_identical"`

	// SpeedupReuseRound is legacy/hot reuse-round ns_per_op at m=16,
	// measured in this run; SpeedupVsMultiload compares the hot arm's
	// k-job stream against the committed BENCH_MULTILOAD amortized
	// baseline at m=16 (0 when that file is absent).
	SpeedupReuseRound  float64 `json:"speedup_reuse_round_m16"`
	SpeedupVsMultiload float64 `json:"speedup_vs_bench_multiload_m16"`

	Cases  []hotpathCase `json:"cases"`
	Allocs hotpathAllocs `json:"allocs_per_op"`
	Soak   hotpathSoak   `json:"soak"`
}

// hotpathArm founds a BidSession, plays the bidding round, and returns a
// closure running one steady-state reuse round (same job every time, so
// the profile never changes and every timed round reuses).
func hotpathArm(in dlt.Instance, keys *sig.Keyring, seed int64, m int, codec sig.Codec, memo *sig.VerifyMemo) (func() (*protocol.Outcome, error), error) {
	sess, err := protocol.NewBidSession(protocol.Config{
		Network: dlt.NCPFE, Z: in.Z, TrueW: in.W, Keys: keys,
		Codec: codec, Memo: memo,
	})
	if err != nil {
		return nil, err
	}
	job := protocol.JobConfig{Seed: seed, NBlocks: 8 * m}
	if _, err := sess.Run(job); err != nil { // bid round
		return nil, err
	}
	return func() (*protocol.Outcome, error) { return sess.Run(job) }, nil
}

// allocsPerRun is testing.AllocsPerRun without the testing package: mean
// mallocs across n calls, after one warm-up call. GC is off during the
// loop and the minimum of three trials is kept, so stray runtime
// allocations on other goroutines can't smear a genuinely zero-alloc
// operation into a fraction.
func allocsPerRun(n int, f func()) float64 {
	f()
	defer debug.SetGCPercent(debug.SetGCPercent(-1))
	best := math.Inf(1)
	for trial := 0; trial < 3; trial++ {
		var before, after runtime.MemStats
		runtime.ReadMemStats(&before)
		for i := 0; i < n; i++ {
			f()
		}
		runtime.ReadMemStats(&after)
		if got := float64(after.Mallocs-before.Mallocs) / float64(n); got < best {
			best = got
		}
	}
	return best
}

func hotpathAllocGuards() (hotpathAllocs, error) {
	var a hotpathAllocs
	k, err := sig.GenerateKeyPair("P1", sig.DeterministicSource(1))
	if err != nil {
		return a, err
	}
	reg := sig.NewRegistry()
	if err := reg.Register("P1", k.Public); err != nil {
		return a, err
	}
	bid := referee.BidPayload{Proc: "P1", Bid: 1.5, Round: "s0:r1"}
	buf := bid.AppendBinary(nil)
	var warm sig.Envelope
	if err := sig.SealInto(k, referee.KindBid, buf, &warm); err != nil {
		return a, err
	}
	a.SealInto = allocsPerRun(500, func() {
		if err := sig.SealInto(k, referee.KindBid, buf, &warm); err != nil {
			panic(err)
		}
	})
	ver := sig.NewBatchVerifier(reg, sig.NewVerifyMemo())
	if err := ver.Verify(&warm); err != nil {
		return a, err
	}
	a.MemoHitVerify = allocsPerRun(500, func() {
		if err := ver.Verify(&warm); err != nil {
			panic(err)
		}
	})
	a.BinaryEncode = allocsPerRun(500, func() { buf = bid.AppendBinary(buf[:0]) })
	var dec referee.BidPayload
	if err := dec.DecodeBinary(buf); err != nil {
		return a, err
	}
	a.BinaryDecode = allocsPerRun(500, func() {
		if err := dec.DecodeBinary(buf); err != nil {
			panic(err)
		}
	})
	return a, nil
}

// hotpathSoakRun drives a multiload service pool (which runs the hot path
// by default) with a sustained job stream and reports throughput and
// round-latency quantiles.
func hotpathSoakRun(seed int64, m, jobs int) (hotpathSoak, error) {
	s := hotpathSoak{M: m, Jobs: jobs}
	in := dlt.DefaultRandomInstance(newSeededRng(seed, m), dlt.NCPFE, m)
	srv := service.New(service.Config{Workers: 2, QueueDepth: jobs})
	defer srv.Close()
	if _, err := srv.CreatePool(service.PoolSpec{Name: "soak", TrueW: in.W, Multiload: true}); err != nil {
		return s, err
	}
	specs := make([]service.JobSpec, jobs)
	for i := range specs {
		specs[i] = service.JobSpec{Z: in.Z, Seed: seed + int64(i), NBlocks: 8 * m}
	}
	start := time.Now()
	tasks, err := srv.Submit("soak", specs, nil)
	if err != nil {
		return s, err
	}
	lat := make([]float64, 0, jobs)
	for i, task := range tasks {
		res := task.Wait()
		if res.Error != "" {
			return s, fmt.Errorf("soak job %d: %s", i, res.Error)
		}
		lat = append(lat, res.RunMS)
	}
	elapsed := time.Since(start)
	sort.Float64s(lat)
	s.Seconds = elapsed.Seconds()
	s.RoundsMin = float64(jobs) / elapsed.Minutes()
	s.P50RoundMS = lat[len(lat)/2]
	s.P99RoundMS = lat[len(lat)*99/100]
	return s, nil
}

// multiloadBaseline reads the committed BENCH_MULTILOAD.json and returns
// the amortized stream ns_per_op at m (0 when unavailable).
func multiloadBaseline(m int) float64 {
	data, err := os.ReadFile("BENCH_MULTILOAD.json")
	if err != nil {
		return 0
	}
	var rep multiloadReport
	if err := json.Unmarshal(data, &rep); err != nil {
		return 0
	}
	for _, c := range rep.Cases {
		if c.Name == "multiload/amortized" && c.M == m {
			return c.NsPerOp
		}
	}
	return 0
}

func runHotpathBench(seed int64, path string) error {
	const k = 8
	report := hotpathReport{
		Tool:       "dls-bench -hotpath",
		Seed:       seed,
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		K:          k,
		PayParity:  true,
	}

	arms := []struct {
		name  string
		codec sig.Codec
		memo  func() *sig.VerifyMemo
	}{
		{"hotpath/legacy", sig.CodecJSON, sig.DisabledVerifyMemo},
		{"hotpath/hot", sig.CodecBinary, sig.NewVerifyMemo},
	}

	for _, m := range []int{4, 16, 32} {
		in := dlt.DefaultRandomInstance(newSeededRng(seed, m), dlt.NCPFE, m)

		// Parity pass: one k-job stream per arm, same seeds, payments
		// must agree bit-exactly.
		var payments [][]float64
		var streamNs [2]float64
		var reuseNs [2]hotpathCase
		for ai, arm := range arms {
			keys := sig.NewKeyring()
			stream := func() ([]*protocol.Outcome, error) {
				sess, err := protocol.NewBidSession(protocol.Config{
					Network: dlt.NCPFE, Z: in.Z, TrueW: in.W, Keys: keys,
					Codec: arm.codec, Memo: arm.memo(),
				})
				if err != nil {
					return nil, err
				}
				outs := make([]*protocol.Outcome, k)
				for j := 0; j < k; j++ {
					out, err := sess.Run(protocol.JobConfig{Seed: seed + int64(j), NBlocks: 8 * m})
					if err != nil {
						return nil, err
					}
					outs[j] = out
				}
				return outs, nil
			}
			outs, err := stream()
			if err != nil {
				return fmt.Errorf("%s/m=%d: %w", arm.name, m, err)
			}
			if ai == 0 {
				payments = make([][]float64, k)
				for j := range outs {
					payments[j] = outs[j].Payments
				}
			} else {
				for j := range outs {
					for i := range in.W {
						if outs[j].Payments[i] != payments[j][i] {
							report.PayParity = false
						}
					}
				}
			}

			sc, err := measure(func() error { _, err := stream(); return err })
			if err != nil {
				return fmt.Errorf("%s/m=%d stream: %w", arm.name, m, err)
			}
			streamNs[ai] = sc.NsPerOp

			round, err := hotpathArm(in, keys, seed, m, arm.codec, arm.memo())
			if err != nil {
				return fmt.Errorf("%s/m=%d: %w", arm.name, m, err)
			}
			rc, err := measure(func() error { _, err := round(); return err })
			if err != nil {
				return fmt.Errorf("%s/m=%d reuse round: %w", arm.name, m, err)
			}
			reuseNs[ai] = hotpathCase{
				Name: arm.name, M: m, K: k,
				NsPerOp: rc.NsPerOp, BytesOp: rc.BytesPerOp, Iters: rc.Iterations,
				StreamNsPerOp: sc.NsPerOp,
			}
			report.Cases = append(report.Cases, reuseNs[ai])
		}
		if m == 16 {
			if reuseNs[1].NsPerOp > 0 {
				report.SpeedupReuseRound = reuseNs[0].NsPerOp / reuseNs[1].NsPerOp
			}
			if base := multiloadBaseline(16); base > 0 && streamNs[1] > 0 {
				report.SpeedupVsMultiload = base / streamNs[1]
			}
		}
	}

	allocs, err := hotpathAllocGuards()
	if err != nil {
		return fmt.Errorf("alloc guards: %w", err)
	}
	report.Allocs = allocs

	soak, err := hotpathSoakRun(seed, 16, 200)
	if err != nil {
		return fmt.Errorf("soak: %w", err)
	}
	report.Soak = soak

	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return err
	}
	fmt.Printf("dls-bench: wrote %d hotpath benchmark cases to %s (payment parity: %v, reuse-round speedup %.2fx, vs BENCH_MULTILOAD %.2fx)\n",
		len(report.Cases), path, report.PayParity, report.SpeedupReuseRound, report.SpeedupVsMultiload)
	return nil
}
