package main

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"

	"dlsbl/internal/dlt"
	"dlsbl/internal/protocol"
	"dlsbl/internal/sig"
)

// The -multiload mode benchmarks amortized bidding end-to-end and writes
// BENCH_MULTILOAD.json (sibling of BENCH_PAYMENTS.json and
// BENCH_FAULTS.json): for each pool size it times a k-job stream played
// per-job (full five phases every load) against the same stream played
// through a protocol.BidSession (bid once, reuse k−1 times), records both
// modes' bus traffic, and re-checks the payment parity the amortization
// promises. Both modes run on a warm keyring so the comparison isolates
// the bidding exchanges, not key generation.

type multiloadCase struct {
	Name    string  `json:"name"`
	M       int     `json:"m"`
	K       int     `json:"k"`
	NsPerOp float64 `json:"ns_per_op"` // one full k-job stream
	BytesOp float64 `json:"bytes_per_op"`
	Iters   int     `json:"iterations"`

	Deliveries int `json:"deliveries"` // bus deliveries for the whole stream
	Messages   int `json:"messages"`
	// Amortized-mode round shape: the bidding round's deliveries vs the
	// steady-state reuse round's (per-job only sets Deliveries/Messages).
	BidRound   int `json:"bid_round_deliveries,omitempty"`
	ReuseRound int `json:"reuse_round_deliveries,omitempty"`
}

type multiloadReport struct {
	Tool       string          `json:"tool"`
	Seed       int64           `json:"seed"`
	GoVersion  string          `json:"go_version"`
	GOMAXPROCS int             `json:"gomaxprocs"`
	K          int             `json:"k"`
	PayParity  bool            `json:"payments_identical"`
	Cases      []multiloadCase `json:"cases"`
}

func runMultiloadBench(seed int64, path string) error {
	const k = 8
	report := multiloadReport{
		Tool:       "dls-bench -multiload",
		Seed:       seed,
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		K:          k,
		PayParity:  true,
	}

	for _, m := range []int{4, 16, 32} {
		in := dlt.DefaultRandomInstance(newSeededRng(seed, m), dlt.NCPFE, m)
		keys := sig.NewKeyring()

		perJob := func() ([]*protocol.Outcome, int, int, error) {
			outs := make([]*protocol.Outcome, k)
			deliv, msgs := 0, 0
			for j := 0; j < k; j++ {
				out, err := protocol.Run(protocol.Config{
					Network: dlt.NCPFE, Z: in.Z, TrueW: in.W,
					Seed: seed + int64(j), NBlocks: 8 * m, Keys: keys,
				})
				if err != nil {
					return nil, 0, 0, err
				}
				outs[j] = out
				deliv += out.BusStats.Deliveries
				msgs += out.BusStats.Messages
			}
			return outs, deliv, msgs, nil
		}
		amortized := func() ([]*protocol.Outcome, *multiloadCase, error) {
			sess, err := protocol.NewBidSession(protocol.Config{
				Network: dlt.NCPFE, Z: in.Z, TrueW: in.W, Keys: keys,
			})
			if err != nil {
				return nil, nil, err
			}
			outs := make([]*protocol.Outcome, k)
			var c multiloadCase
			for j := 0; j < k; j++ {
				out, err := sess.Run(protocol.JobConfig{Seed: seed + int64(j), NBlocks: 8 * m})
				if err != nil {
					return nil, nil, err
				}
				outs[j] = out
				c.Deliveries += out.BusStats.Deliveries
				c.Messages += out.BusStats.Messages
				if j == 0 {
					c.BidRound = out.BusStats.Deliveries
				} else {
					c.ReuseRound = out.BusStats.Deliveries
				}
			}
			return outs, &c, nil
		}

		// One traced pass for the traffic columns and the parity check.
		perOuts, perDeliv, perMsgs, err := perJob()
		if err != nil {
			return fmt.Errorf("per-job/m=%d: %w", m, err)
		}
		amOuts, amCase, err := amortized()
		if err != nil {
			return fmt.Errorf("amortized/m=%d: %w", m, err)
		}
		for j := 0; j < k; j++ {
			for i := range in.W {
				if perOuts[j].Payments[i] != amOuts[j].Payments[i] {
					report.PayParity = false
				}
			}
		}

		pc, err := measure(func() error { _, _, _, err := perJob(); return err })
		if err != nil {
			return fmt.Errorf("per-job/m=%d: %w", m, err)
		}
		report.Cases = append(report.Cases, multiloadCase{
			Name: "multiload/per-job", M: m, K: k,
			NsPerOp: pc.NsPerOp, BytesOp: pc.BytesPerOp, Iters: pc.Iterations,
			Deliveries: perDeliv, Messages: perMsgs,
		})

		ac, err := measure(func() error { _, _, err := amortized(); return err })
		if err != nil {
			return fmt.Errorf("amortized/m=%d: %w", m, err)
		}
		amCase.Name, amCase.M, amCase.K = "multiload/amortized", m, k
		amCase.NsPerOp, amCase.BytesOp, amCase.Iters = ac.NsPerOp, ac.BytesPerOp, ac.Iterations
		report.Cases = append(report.Cases, *amCase)
	}

	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return err
	}
	fmt.Printf("dls-bench: wrote %d multiload benchmark cases to %s (payment parity: %v)\n",
		len(report.Cases), path, report.PayParity)
	return nil
}
