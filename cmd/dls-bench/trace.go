package main

import (
	"fmt"
	"os"

	"dlsbl/internal/agent"
	"dlsbl/internal/bus"
	"dlsbl/internal/dlt"
	"dlsbl/internal/obs"
	"dlsbl/internal/protocol"
	"dlsbl/internal/session"
	"dlsbl/internal/sig"
)

// runTraceBench plays a canned faulty multiload session under one
// recorder and writes the Chrome trace-event JSON: four jobs against a
// Multiload pool. Job 0 loses a processor to a crash fault during its
// founding Bidding phase (eviction, retransmit storm), job 1 is served
// from the cached bids (bid_reused, short Bidding span), job 2 changes
// a bid and forces a mid-stream re-bid, and job 3 reuses again — the
// full repertoire in one picture. Open the output in chrome://tracing
// or Perfetto; each processor is a thread row, the protocol phases are
// the slices on the "protocol" row.
func runTraceBench(seed int64, path string) error {
	rec := obs.NewRecorder()
	sess := &session.Session{
		Network:   dlt.NCPFE,
		TrueW:     []float64{1, 1.5, 2, 2.5},
		Keys:      sig.NewKeyring(),
		Multiload: true,
	}
	st, err := sess.NewState()
	if err != nil {
		return err
	}
	overbid := []agent.Behavior{{}, {Name: "overbid", BidFactor: 1.25}}
	jobs := []session.Job{
		{Z: 0.2, Seed: seed,
			Faults: &bus.FaultPlan{Seed: seed, Unresponsive: []string{"P3"}},
			Retry:  protocol.RetryPolicy{MaxAttempts: 2}},
		{Z: 0.2, Seed: seed + 1},
		{Z: 0.2, Seed: seed + 2, Behaviors: overbid},
		{Z: 0.2, Seed: seed + 3, Behaviors: overbid},
	}
	for i, job := range jobs {
		job.Tracer = rec
		if _, err := sess.Step(st, job); err != nil {
			return fmt.Errorf("trace job %d: %w", i, err)
		}
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := rec.WriteChromeTrace(f); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	bs := st.BidStats()
	fmt.Printf("trace written to %s: %d jobs, %d rebids, %d deliveries saved (open in chrome://tracing)\n",
		path, len(jobs), bs.Rebids, bs.SavedDeliveries)
	return nil
}
