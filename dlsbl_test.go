package dlsbl_test

import (
	"math"
	"strings"
	"testing"

	"dlsbl"
)

// The facade tests exercise the public API exactly as a downstream user
// would, including the runnable documentation examples.

func TestFacadeOptimalPipeline(t *testing.T) {
	in := dlsbl.Instance{Network: dlsbl.NCPFE, Z: 0.2, W: []float64{1, 1.5, 2, 2.5}}
	alloc, ms, err := dlsbl.OptimalMakespan(in)
	if err != nil {
		t.Fatal(err)
	}
	if err := alloc.Validate(4); err != nil {
		t.Fatal(err)
	}
	ft, err := dlsbl.FinishTimes(in, alloc)
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range ft {
		if math.Abs(f-ms) > 1e-9 {
			t.Errorf("finish %v != makespan %v", f, ms)
		}
	}
	ms2, err := dlsbl.Makespan(in, alloc)
	if err != nil {
		t.Fatal(err)
	}
	if ms2 != ms {
		t.Errorf("Makespan %v != OptimalMakespan %v", ms2, ms)
	}
	tl, err := dlsbl.Schedule(in, alloc)
	if err != nil {
		t.Fatal(err)
	}
	chart, err := dlsbl.RenderGantt(tl, dlsbl.GanttOptions{Width: 40})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(chart, "legend:") {
		t.Error("chart missing legend")
	}
	fig, err := dlsbl.RenderFigure(in, dlsbl.GanttOptions{Width: 40})
	if err != nil {
		t.Fatal(err)
	}
	if fig == "" {
		t.Error("empty figure")
	}
}

func TestFacadeBaselines(t *testing.T) {
	if s := dlsbl.EqualSplit(4).Sum(); math.Abs(s-1) > 1e-12 {
		t.Errorf("equal split sums to %v", s)
	}
	if s := dlsbl.ProportionalSplit([]float64{1, 2}).Sum(); math.Abs(s-1) > 1e-12 {
		t.Errorf("proportional split sums to %v", s)
	}
}

func TestFacadeMechanism(t *testing.T) {
	mech := dlsbl.Mechanism{Network: dlsbl.NCPFE, Z: 0.2}
	w := []float64{1, 1.5, 2}
	out, err := mech.Run(w, dlsbl.TruthfulExec(w))
	if err != nil {
		t.Fatal(err)
	}
	for i, u := range out.Utility {
		if u < 0 {
			t.Errorf("truthful utility U[%d]=%v < 0", i, u)
		}
	}
	// The two payment rules are distinct constants.
	if dlsbl.WithVerification == dlsbl.WithoutVerification {
		t.Error("payment rules collide")
	}
}

func TestFacadeProtocol(t *testing.T) {
	out, err := dlsbl.RunProtocol(dlsbl.ProtocolConfig{
		Network: dlsbl.NCPNFE,
		Z:       0.15,
		TrueW:   []float64{1, 2, 3},
		Seed:    5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !out.Completed {
		t.Fatalf("honest run terminated in %s", out.TerminatedIn)
	}
	behaviors := make([]dlsbl.Behavior, 3)
	behaviors[1] = dlsbl.Equivocator
	out2, err := dlsbl.RunProtocol(dlsbl.ProtocolConfig{
		Network:   dlsbl.NCPNFE,
		Z:         0.15,
		TrueW:     []float64{1, 2, 3},
		Behaviors: behaviors,
		Seed:      5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if out2.Completed {
		t.Error("equivocator run completed")
	}
	if out2.Fines[1] <= 0 {
		t.Error("equivocator not fined through the facade")
	}
}

func TestFacadeExperiments(t *testing.T) {
	all := dlsbl.Experiments()
	if len(all) != 31 {
		t.Fatalf("%d experiments, want 31", len(all))
	}
	e, ok := dlsbl.ExperimentByID("E1")
	if !ok {
		t.Fatal("E1 missing")
	}
	res, err := e.Run(1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Figure == "" {
		t.Error("E1 missing figure")
	}
}

func TestFacadeAffine(t *testing.T) {
	in := dlsbl.AffineInstance{
		Instance: dlsbl.Instance{Network: dlsbl.CP, Z: 0.1, W: []float64{1, 1, 1, 1}},
		Scm:      2,
	}
	alloc, _, err := dlsbl.OptimalAffine(in)
	if err != nil {
		t.Fatal(err)
	}
	used := 0
	for _, a := range alloc {
		if a > 1e-12 {
			used++
		}
	}
	if used != 1 {
		t.Errorf("heavy overhead should select one processor, got %d", used)
	}
}

func TestFacadeNetworks(t *testing.T) {
	if len(dlsbl.Networks) != 3 {
		t.Fatalf("Networks = %v", dlsbl.Networks)
	}
	if dlsbl.CP.String() != "CP" || dlsbl.NCPFE.String() != "NCP-FE" || dlsbl.NCPNFE.String() != "NCP-NFE" {
		t.Error("network names wrong")
	}
	if len(dlsbl.DeviantCatalog) < 8 {
		t.Errorf("deviant catalog too small: %d", len(dlsbl.DeviantCatalog))
	}
}
