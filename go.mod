module dlsbl

go 1.22
